#include "serve/transport.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "util/mutex.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace jps::serve {

namespace {

// One direction of an in-process connection: a bounded byte ring with
// close semantics.  Writers block when the buffer is full (backpressure),
// readers block when it is empty; closing either end wakes both sides.
class Pipe {
 public:
  explicit Pipe(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

  std::size_t read(char* out, std::size_t max, double timeout_ms) {
    util::MutexLock lock(mutex_);
    // Explicit wait loops (not predicate lambdas) keep the guarded reads
    // visible to -Wthread-safety.
    if (timeout_ms > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double, std::milli>(timeout_ms);
      while (buffer_.empty() && !closed_) {
        if (readable_.wait_until(lock, deadline) == std::cv_status::timeout &&
            buffer_.empty() && !closed_)
          throw TransportTimeout("serve: read timed out after " +
                                 std::to_string(timeout_ms) + " ms");
      }
    } else {
      while (buffer_.empty() && !closed_) readable_.wait(lock);
    }
    if (buffer_.empty()) return 0;  // closed and drained => EOF
    const std::size_t n = std::min(max, buffer_.size());
    std::copy_n(buffer_.begin(), n, out);
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
    lock.unlock();
    writable_.notify_all();
    return n;
  }

  void write(const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
      util::MutexLock lock(mutex_);
      while (buffer_.size() >= capacity_ && !closed_) writable_.wait(lock);
      if (closed_) throw std::runtime_error("serve: connection closed by peer");
      const std::size_t n =
          std::min(size - written, capacity_ - buffer_.size());
      buffer_.insert(buffer_.end(), data + written, data + written + n);
      written += n;
      lock.unlock();
      readable_.notify_all();
    }
  }

  void close() {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    readable_.notify_all();
    writable_.notify_all();
  }

 private:
  const std::size_t capacity_;
  util::Mutex mutex_{"serve.pipe"};
  util::CondVar readable_;
  util::CondVar writable_;
  std::deque<char> buffer_ JPS_GUARDED_BY(mutex_);
  bool closed_ JPS_GUARDED_BY(mutex_) = false;
};

class InProcessStream final : public ByteStream {
 public:
  InProcessStream(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~InProcessStream() override { close(); }

  std::size_t read(char* out, std::size_t max) override {
    return in_->read(out, max, read_timeout_ms_);
  }
  void write(const char* data, std::size_t size) override {
    out_->write(data, size);
  }
  void shutdown_read() override { in_->close(); }
  void close() override {
    in_->close();
    out_->close();
  }
  void set_read_timeout_ms(double ms) override { read_timeout_ms_ = ms; }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
  double read_timeout_ms_ = 0.0;  // reads and timeout-sets share one thread
};

void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

class SocketStream final : public ByteStream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() override { close(); }

  std::size_t read(char* out, std::size_t max) override {
    while (true) {
      const int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) return 0;  // closed locally: EOF
      const ssize_t n = ::recv(fd, out, max, 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && timed_) {
        // SO_RCVTIMEO expired: the peer is stalled, not gone.
        throw TransportTimeout("serve: socket read timed out");
      }
      return 0;  // reset/closed peer reads as EOF at the frame layer
    }
  }

  void write(const char* data, std::size_t size) override {
    std::size_t written = 0;
    while (written < size) {
      const int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) throw_errno("serve: send on closed stream");
      const ssize_t n =
          ::send(fd, data + written, size - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("serve: send");
      }
      written += static_cast<std::size_t>(n);
    }
  }

  void shutdown_read() override {
    // Races a blocked read() by design (the server's drain path); fd_ is
    // atomic so the handoff is clean under TSan too.
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }

  void close() override {
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

  void set_read_timeout_ms(double ms) override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return;
    timeval tv{};
    if (ms > 0.0) {
      // Round up so a sub-microsecond request still arms the timer (a zero
      // timeval means "block forever" to SO_RCVTIMEO).
      const double usec_total = std::ceil(ms * 1000.0);
      tv.tv_sec = static_cast<time_t>(usec_total / 1e6);
      tv.tv_usec = static_cast<suseconds_t>(
          usec_total - static_cast<double>(tv.tv_sec) * 1e6);
      if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    }
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    timed_ = ms > 0.0;
  }

 private:
  std::atomic<int> fd_;
  // Whether a deadline is armed; EAGAIN on an un-timed blocking socket (not
  // expected, but possible with exotic socket options) keeps mapping to EOF.
  std::atomic<bool> timed_{false};
};

}  // namespace

StreamPair make_in_process_pair(std::size_t capacity) {
  auto a_to_b = std::make_shared<Pipe>(capacity);
  auto b_to_a = std::make_shared<Pipe>(capacity);
  StreamPair pair;
  pair.first = std::make_unique<InProcessStream>(b_to_a, a_to_b);
  pair.second = std::make_unique<InProcessStream>(a_to_b, b_to_a);
  return pair;
}

SocketListener::SocketListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("serve: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("serve: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
}

SocketListener::~SocketListener() { close(); }

std::unique_ptr<ByteStream> SocketListener::accept() {
  while (true) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return nullptr;  // close() already ran
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_unique<SocketStream>(client);
    }
    if (errno == EINTR) continue;
    return nullptr;  // listener closed (or unrecoverable): stop accepting
  }
}

void SocketListener::close() {
  // shutdown() wakes a blocked accept(); the lock-free exchange plus both
  // syscalls are async-signal-safe, so the daemon's SIGINT handler may
  // call this while the accept loop is blocked in another thread.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::unique_ptr<ByteStream> socket_connect(const std::string& host,
                                           std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("serve: connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketStream>(fd);
}

}  // namespace jps::serve
