// Per-tenant circuit breaker for the plan server's degraded mode.
//
// A wedged or crashing planner turns every request into a slow failure;
// without a breaker each tenant keeps paying the full failure latency and
// the server keeps burning pool slots on work it cannot finish.  The
// breaker watches a rolling window of per-tenant outcomes and, once the
// recent failure ratio crosses a threshold, OPENS: further requests skip
// planning entirely and the server degrades to the nearest-bandwidth stale
// plan from the cache (kOkStale) — the serving-side analogue of the fault
// executor's local fallback ("a usable answer now beats a perfect answer
// never").  After a cooldown one PROBE request is let through; its outcome
// closes the breaker or re-arms the cooldown.
//
// States (classic three-state breaker):
//   closed     normal operation; outcomes feed the rolling window
//   open       requests are served stale (or UNAVAILABLE when the cache
//              has nothing nearby) until cooldown_ms elapses
//   half-open  exactly one in-flight probe; success closes, failure reopens
//
// What counts as a failure is the caller's choice via record(): the server
// counts kInternal and kDeadlineExceeded (planner broken or too slow), not
// client-caused statuses like kInvalidArgument/kNotFound, and optionally
// classifies slow successes via latency_threshold_ms.
//
// Time is injected (steady milliseconds) for deterministic tests.
// Thread-safe; one mutex — decisions are two comparisons and a ring-buffer
// write, far off the planning path's cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "util/mutex.h"

namespace jps::serve {

struct BreakerOptions {
  /// Rolling outcomes remembered per tenant.
  std::size_t window = 32;
  /// No judgement before this many outcomes are in the window (a single
  /// early failure must not open a breaker).
  std::size_t min_samples = 8;
  /// Open when failures / window_size >= this ratio.
  double failure_ratio = 0.5;
  /// > 0: a SUCCESS slower than this also counts as a failure (latency is
  /// an SLO breach even when the status is kOk).  0 disables.
  double latency_threshold_ms = 0.0;
  /// How long an open breaker waits before letting one probe through.
  double cooldown_ms = 1000.0;
};

class CircuitBreaker {
 public:
  enum class Decision {
    kClosed,  // proceed normally
    kOpen,    // do not plan; serve degraded
    kProbe,   // proceed, and report the outcome — it settles the breaker
  };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// Gate one request for `tenant` at `now_ms` (steady, caller-supplied).
  [[nodiscard]] Decision admit(const std::string& tenant, double now_ms);

  /// Report a planning attempt's outcome.  Must be called for every
  /// admitted (kClosed or kProbe) request that reached planning; degraded
  /// (kOpen) replies are NOT outcomes and must not be recorded.
  void record(const std::string& tenant, double now_ms, bool failure,
              double latency_ms);

  /// A kProbe admission that never reached planning (shed, drain) returns
  /// its probe slot; the next admit() may probe again.  Without this a
  /// half-open breaker whose probe was shed would wait forever.
  void cancel_probe(const std::string& tenant);

  /// True when the tenant's breaker is currently open (cooldown pending or
  /// a probe still in flight).
  [[nodiscard]] bool open(const std::string& tenant, double now_ms) const;

  /// Total closed->open transitions across all tenants (monotone).
  [[nodiscard]] std::uint64_t opens() const;

  /// Tenants currently open.
  [[nodiscard]] std::size_t open_count() const;

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Tenant {
    State state = State::kClosed;
    std::deque<bool> outcomes;  // true = failure; bounded by options.window
    std::size_t failures = 0;
    double opened_at_ms = 0.0;
    bool probe_inflight = false;
  };

  void push_outcome(Tenant& t, bool failure) JPS_REQUIRES(mutex_);

  BreakerOptions options_;
  mutable util::Mutex mutex_{"serve.breaker"};
  std::unordered_map<std::string, Tenant> tenants_ JPS_GUARDED_BY(mutex_);
  std::uint64_t opens_ JPS_GUARDED_BY(mutex_) = 0;
};

}  // namespace jps::serve
