#include "serve/chaos.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace jps::serve {

FaultyByteStream::FaultyByteStream(std::unique_ptr<ByteStream> inner,
                                   const fault::FaultSpec& spec,
                                   double delay_scale)
    : inner_(std::move(inner)), delay_scale_(delay_scale) {
  if (!inner_)
    throw std::invalid_argument("FaultyByteStream: inner stream is null");
  for (const fault::FaultEvent& e : spec.events) {
    if (!fault::fault_kind_is_net(e.kind)) continue;
    Window w;
    w.start = static_cast<std::uint64_t>(e.start_ms);
    w.end = static_cast<std::uint64_t>(e.end_ms);
    w.value = e.value;
    switch (e.kind) {
      case fault::FaultKind::kNetDelay: delay_.push_back(w); break;
      case fault::FaultKind::kNetShort: shorten_.push_back(w); break;
      case fault::FaultKind::kNetDrop: drop_.push_back(w); break;
      case fault::FaultKind::kNetCorrupt: corrupt_.push_back(w); break;
      default: break;
    }
  }
  const auto by_start = [](const Window& a, const Window& b) {
    return a.start < b.start;
  };
  std::sort(delay_.begin(), delay_.end(), by_start);
  std::sort(shorten_.begin(), shorten_.end(), by_start);
  std::sort(corrupt_.begin(), corrupt_.end(), by_start);
  std::sort(drop_.begin(), drop_.end(), by_start);
}

FaultyByteStream::~FaultyByteStream() { close(); }

const FaultyByteStream::Window* FaultyByteStream::find(
    const std::vector<Window>& windows, std::uint64_t offset) {
  for (const Window& w : windows) {
    if (w.start > offset) break;  // sorted: nothing later can cover offset
    if (offset < w.end) return &w;
  }
  return nullptr;
}

bool FaultyByteStream::drop_fired(std::uint64_t offset) {
  if (dropped_.load(std::memory_order_acquire)) return true;
  for (const Window& w : drop_) {
    if (offset >= w.start) {
      dropped_.store(true, std::memory_order_release);
      // A dead peer is dead in both directions; severing the inner stream
      // wakes whoever is blocked on the other side.
      inner_->close();
      return true;
    }
  }
  return false;
}

void FaultyByteStream::sleep_for_ms(double ms) {
  const double scaled = ms * delay_scale_;
  if (scaled <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(scaled));
}

std::size_t FaultyByteStream::read(char* out, std::size_t max) {
  if (max == 0) return 0;
  if (drop_fired(read_offset_)) return 0;  // dead peer: EOF
  if (const Window* w = find(delay_, read_offset_)) {
    delayed_ops_.fetch_add(1, std::memory_order_relaxed);
    sleep_for_ms(w->value);
  }
  std::size_t cap = max;
  if (find(shorten_, read_offset_) != nullptr) {
    short_ops_.fetch_add(1, std::memory_order_relaxed);
    cap = 1;
  }
  // Never transfer past an upcoming drop boundary: bytes up to it arrive,
  // then the next call reports the death.
  for (const Window& w : drop_) {
    if (w.start > read_offset_)
      cap = std::min<std::uint64_t>(cap, w.start - read_offset_);
  }
  const std::size_t n = inner_->read(out, cap);
  if (n > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (const Window* w = find(corrupt_, read_offset_ + i)) {
        out[i] = static_cast<char>(static_cast<unsigned char>(out[i]) ^
                                   static_cast<unsigned char>(w->value));
        corrupted_bytes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    read_offset_ += n;
  }
  return n;
}

void FaultyByteStream::write(const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    if (drop_fired(write_offset_))
      throw std::runtime_error("serve: chaos drop severed the connection");
    if (const Window* w = find(delay_, write_offset_)) {
      delayed_ops_.fetch_add(1, std::memory_order_relaxed);
      sleep_for_ms(w->value);
    }
    std::size_t chunk = size - written;
    if (find(shorten_, write_offset_) != nullptr) {
      short_ops_.fetch_add(1, std::memory_order_relaxed);
      chunk = 1;
    }
    for (const Window& w : drop_) {
      if (w.start > write_offset_)
        chunk = std::min<std::uint64_t>(chunk, w.start - write_offset_);
    }
    inner_->write(data + written, chunk);
    written += chunk;
    write_offset_ += chunk;
  }
}

void FaultyByteStream::shutdown_read() { inner_->shutdown_read(); }

void FaultyByteStream::close() { inner_->close(); }

void FaultyByteStream::set_read_timeout_ms(double ms) {
  inner_->set_read_timeout_ms(ms);
}

ChaosStats FaultyByteStream::stats() const {
  ChaosStats s;
  s.delayed_ops = delayed_ops_.load(std::memory_order_relaxed);
  s.short_ops = short_ops_.load(std::memory_order_relaxed);
  s.corrupted_bytes = corrupted_bytes_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace jps::serve
