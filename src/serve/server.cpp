#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/obs.h"
#include "obs/trace_context.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "serve/snapshot.h"
#include "util/log.h"

namespace jps::serve {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Coalescing/backpressure key: every field that changes the answer.  The
// bucket's raw bits (not its decimal rendering) so two doubles coalesce
// exactly when the cache would treat them as one key.
std::string inflight_key(const PlanRequest& request, double bucket_mbps) {
  std::string key = request.model;
  key += '|';
  key += std::to_string(static_cast<int>(request.strategy));
  key += '|';
  key += std::to_string(request.n_jobs);
  key += '|';
  key += std::to_string(std::bit_cast<std::uint64_t>(bucket_mbps));
  return key;
}

PlanReply error_reply(Status status, std::string message) {
  PlanReply reply;
  reply.status = status;
  reply.message = std::move(message);
  return reply;
}

// RAII per-request tracer: installs a TraceContext (adopted from the wire
// request's trace fields, or minted fresh), opens the root "serve.request"
// span, and on destruction completes the trace in the flight recorder and
// links the request's latency into the serve.plan_ms exemplars.  Inert when
// both the recorder and process-wide span tracing are off.
class RequestTracer {
 public:
  explicit RequestTracer(const PlanRequest& request) {
    if (!obs::FlightRecorder::global().enabled() && !obs::enabled()) return;
    active_ = true;
    if ((request.trace_hi | request.trace_lo) != 0) {
      // Adopt the client's trace; our root span parents onto the client-side
      // span that issued the request.
      context_.trace_hi = request.trace_hi;
      context_.trace_lo = request.trace_lo;
      context_.span_id = request.trace_parent_span;
    } else {
      context_ = obs::TraceContext::start();
      context_.span_id = 0;  // server-originated trace: the root has no parent
    }
    start_ms_ = obs::Registry::global().now_ms();
    scope_.emplace(context_);
    root_.emplace("serve.request", "serve");
    root_->arg("tenant", request.tenant);
    root_->arg("model", request.model);
  }

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  /// Record the request's outcome (call once the reply is known; the tracer
  /// stays open so the encode span still joins the trace).
  void set_outcome(const PlanReply& reply) {
    if (!active_) return;
    plan_ms_ = obs::Registry::global().now_ms() - start_ms_;
    status_ = status_name(reply.status);
    error_ = !reply.has_plan();
    if (reply.coalesced) root_->arg("coalesced", "1");
    if (reply.cache_hit) root_->arg("cache_hit", "1");
    root_->arg("status", status_);
  }

  ~RequestTracer() {
    if (!active_) return;
    root_.reset();  // close the root span so it reaches the recorder
    const double dur_ms = obs::Registry::global().now_ms() - start_ms_;
    obs::FlightRecorder& recorder = obs::FlightRecorder::global();
    recorder.record_exemplar("serve.plan_ms",
                             plan_ms_ > 0.0 ? plan_ms_ : dur_ms, context_);
    recorder.finish(context_, status_, error_, start_ms_, dur_ms);
    scope_.reset();
  }

 private:
  bool active_ = false;
  bool error_ = false;
  double start_ms_ = 0.0;
  double plan_ms_ = 0.0;
  std::string status_ = "UNKNOWN";
  obs::TraceContext context_;
  std::optional<obs::TraceScope> scope_;
  std::optional<obs::Span> root_;
};

}  // namespace

double quantize_bandwidth(double bandwidth_mbps, double step_mbps) {
  const double buckets = std::round(bandwidth_mbps / step_mbps);
  return std::max(1.0, buckets) * step_mbps;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::max<std::size_t>(1, options_.workers)),
      admission_(options_.tenant_rate_per_sec, options_.tenant_burst),
      cache_(std::max<std::size_t>(1, options_.cache_shards)),
      breaker_(options_.breaker) {
  options_.max_inflight = std::max<std::size_t>(1, options_.max_inflight);

  // The recorder is process-wide; the most recently constructed server's
  // options govern it (one server per process outside tests).
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.set_enabled(options_.flight_recorder_enabled);
  if (options_.flight_recorder_capacity > 0)
    recorder.set_capacity(options_.flight_recorder_capacity);
  if (options_.flight_recorder_sample_every > 0)
    recorder.set_sample_every(options_.flight_recorder_sample_every);

  if (!options_.snapshot_path.empty()) {
    const SnapshotLoadResult loaded =
        load_cache_snapshot(cache_, options_.snapshot_path);
    if (loaded.entries > 0) {
      warm_start_entries_.store(loaded.entries, std::memory_order_relaxed);
      obs::counter("serve.warm_start_entries").add(loaded.entries);
    }
    if (options_.snapshot_interval_ms > 0.0) {
      snapshot_thread_ = std::thread([this] {
        const auto interval = std::chrono::duration<double, std::milli>(
            options_.snapshot_interval_ms);
        util::MutexLock lock(snapshot_mutex_);
        while (!stopping_.load(std::memory_order_acquire)) {
          // Fixed deadline so spurious wakeups re-enter the wait with the
          // remaining budget; a stop() notification breaks out early.
          const auto deadline = std::chrono::steady_clock::now() + interval;
          while (!stopping_.load(std::memory_order_acquire) &&
                 snapshot_cv_.wait_until(lock, deadline) !=
                     std::cv_status::timeout) {
          }
          if (stopping_.load(std::memory_order_acquire)) break;
          lock.unlock();
          save_snapshot_if_configured();
          lock.lock();
        }
      });
    }
  }
}

Server::~Server() { stop(); }

Server::PlanOutcome Server::compute_plan(const PlanRequest& request,
                                         double bucket_mbps) {
  // Runs on a pool worker; ThreadPool::submit carried the leader's
  // TraceContext here, so these spans join the request's tree.
  obs::Span compute_span("serve.plan_compute", "serve");
  compute_span.arg("model", request.model);

  if (options_.debug_plan_delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.debug_plan_delay_ms));
  }

  std::shared_ptr<const dnn::Graph> graph;
  {
    util::MutexLock lock(graphs_mutex_);
    auto it = graphs_.find(request.model);
    if (it != graphs_.end()) graph = it->second;
  }
  if (!graph) {
    // models::build throws std::invalid_argument for unknown names; the
    // caller maps that to NOT_FOUND.  Build outside the map lock (graph
    // construction is the expensive part); last insert wins harmlessly.
    obs::Span graph_span("serve.model_graph", "serve");
    auto built = std::make_shared<const dnn::Graph>(models::build(request.model));
    util::MutexLock lock(graphs_mutex_);
    graph = graphs_.emplace(request.model, std::move(built)).first->second;
  }

  const net::Channel channel(bucket_mbps);
  const core::CurveCacheKey curve_key(request.model, options_.device.name,
                                      bucket_mbps);
  auto curve = cache_.curve(curve_key, [&] {
    const profile::LatencyModel mobile(options_.device);
    return partition::ProfileCurve::build(*graph, mobile, channel);
  });

  PlanOutcome outcome;
  outcome.bucket_mbps = bucket_mbps;
  bool built = false;
  const core::PlanCacheKey plan_key(request.model, options_.device.name,
                                    bucket_mbps, request.strategy,
                                    request.n_jobs);
  {
    obs::Span cache_span("serve.cache_lookup", "serve");
    outcome.plan = cache_.plan(plan_key, [&] {
      built = true;
      return core::Planner(*curve).plan(request.strategy, request.n_jobs);
    });
    cache_span.arg("hit", built ? "0" : "1");
  }
  outcome.cache_hit = !built;
  if (built) plans_computed_.fetch_add(1, std::memory_order_relaxed);
  return outcome;
}

PlanReply Server::to_reply(const PlanOutcome& outcome) const {
  PlanReply reply;
  reply.status = Status::kOk;
  reply.cache_hit = outcome.cache_hit;
  reply.bandwidth_bucket_mbps = outcome.bucket_mbps;
  reply.makespan_ms = outcome.plan->predicted_makespan;
  // Aggregate per-job assignments into a (cut -> count) mix, ascending.
  std::map<std::size_t, std::uint32_t> mix;
  for (const core::JobAssignment& job : outcome.plan->jobs)
    ++mix[job.cut_index];
  reply.mix.reserve(mix.size());
  for (const auto& [cut, count] : mix)
    reply.mix.push_back({static_cast<std::uint32_t>(cut), count});
  return reply;
}

PlanReply Server::stale_reply(const PlanRequest& request, double bucket_mbps) {
  static obs::Counter& stale_counter = obs::counter("serve.stale_served");

  obs::Span span("serve.stale_lookup", "serve");
  const core::PlanCacheKey want(request.model, options_.device.name,
                                bucket_mbps, request.strategy,
                                request.n_jobs);
  double stale_bw = 0.0;
  auto plan = cache_.nearest_plan(want, &stale_bw);
  if (!plan) {
    return error_reply(Status::kUnavailable,
                       "breaker open for tenant '" + request.tenant +
                           "' and no stale plan cached");
  }
  PlanOutcome outcome;
  outcome.plan = std::move(plan);
  outcome.cache_hit = true;
  outcome.bucket_mbps = stale_bw;
  PlanReply reply = to_reply(outcome);
  reply.status = Status::kOkStale;
  reply.stale = true;
  reply.message = "breaker open; stale plan from bucket " +
                  std::to_string(stale_bw) + " Mbps";
  stale_served_.fetch_add(1, std::memory_order_relaxed);
  stale_counter.add();
  return reply;
}

PlanReply Server::handle_plan(const PlanRequest& request) {
  // The tracer owns the trace for the whole request (admission through
  // reply); process_plan's spans nest under its root "serve.request" span.
  RequestTracer tracer(request);
  PlanReply reply = process_plan(request);
  tracer.set_outcome(reply);
  return reply;
}

PlanReply Server::process_plan(const PlanRequest& request) {
  static obs::Counter& requests_total = obs::counter("serve.requests");
  static obs::Counter& coalesce_hits = obs::counter("serve.coalesce_hits");
  static obs::Counter& cache_hits = obs::counter("serve.cache_hits");
  static obs::Counter& shed_rate = obs::counter("serve.shed_rate_limited");
  static obs::Counter& shed_overload = obs::counter("serve.shed_overload");
  static obs::Counter& deadline_count = obs::counter("serve.deadline_exceeded");
  static obs::Counter& breaker_opens = obs::counter("serve.breaker_opens");
  static obs::Histogram& plan_ms = obs::histogram("serve.plan_ms");
  static obs::Gauge& inflight_gauge = obs::gauge("serve.inflight");
  static obs::Gauge& breaker_gauge = obs::gauge("serve.breaker_open");

  const double arrival_ms = steady_now_ms();
  obs::ScopedTimer timer(plan_ms);
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_total.add();

  // Covers validation, deadline checks, rate limiting, and the breaker gate;
  // reset just before the coalescing block so "time spent being admitted" is
  // separable from "time spent waiting for a plan" in the trace.
  std::optional<obs::Span> admission_span;
  admission_span.emplace("serve.admission", "serve");

  if (stopping_.load(std::memory_order_acquire))
    return error_reply(Status::kUnavailable, "server is draining");

  if (!std::isfinite(request.bandwidth_mbps) || request.bandwidth_mbps <= 0.0)
    return error_reply(Status::kInvalidArgument,
                       "bandwidth_mbps must be finite and > 0");
  if (request.n_jobs < 1)
    return error_reply(Status::kInvalidArgument, "n_jobs must be >= 1");
  if (request.strategy == core::Strategy::kBruteForce ||
      request.strategy == core::Strategy::kRobust)
    return error_reply(Status::kInvalidArgument,
                       std::string("strategy ") +
                           core::strategy_name(request.strategy) +
                           " is not servable");
  if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0)
    return error_reply(Status::kInvalidArgument,
                       "deadline_ms must be finite and >= 0");

  const bool has_deadline = request.deadline_ms > 0.0;
  const auto deadline_expired = [&] {
    return has_deadline &&
           steady_now_ms() - arrival_ms >= request.deadline_ms;
  };
  const auto deadline_reply = [&](const char* where) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    deadline_count.add();
    return error_reply(Status::kDeadlineExceeded,
                       "deadline of " + std::to_string(request.deadline_ms) +
                           " ms exhausted " + where);
  };

  if (options_.debug_admission_delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.debug_admission_delay_ms));
  }

  // Deadline check 1/3: a request that arrives already expired (or expired
  // in the accept queue) must not consume an admission token.
  if (deadline_expired()) return deadline_reply("at admission");

  if (!admission_.admit(request.tenant, steady_now_ms())) {
    shed_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    shed_rate.add();
    return error_reply(Status::kResourceExhausted,
                       "tenant '" + request.tenant + "' over rate limit");
  }

  const double bucket =
      quantize_bandwidth(request.bandwidth_mbps, options_.bandwidth_bucket_mbps);

  // Deadline check 2/3: before any planning work is queued.  Running this
  // BEFORE the breaker gate means an expired probe never needs cancelling.
  if (deadline_expired()) return deadline_reply("before planning");

  CircuitBreaker::Decision decision = CircuitBreaker::Decision::kClosed;
  if (options_.breaker_enabled) {
    decision = breaker_.admit(request.tenant, steady_now_ms());
    if (decision == CircuitBreaker::Decision::kOpen) {
      breaker_gauge.set(static_cast<double>(breaker_.open_count()));
      return stale_reply(request, bucket);
    }
  }
  const bool probe = decision == CircuitBreaker::Decision::kProbe;

  admission_span.reset();
  const std::string key = inflight_key(request, bucket);

  std::shared_future<PlanOutcome> future;
  bool leader = false;
  {
    util::MutexLock lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      if (inflight_.size() >= options_.max_inflight) {
        shed_overload_.fetch_add(1, std::memory_order_relaxed);
        shed_overload.add();
        // A shed is not a planning outcome: return the probe slot instead
        // of recording, or a half-open breaker would wait forever.
        if (probe) breaker_.cancel_probe(request.tenant);
        return error_reply(Status::kResourceExhausted,
                           "server overloaded (" +
                               std::to_string(inflight_.size()) +
                               " computations in flight)");
      }
      try {
        future = pool_.submit([this, request, bucket] {
                        return compute_plan(request, bucket);
                      })
                     .share();
      } catch (const std::exception&) {
        // Pool already shut down: we lost the race with stop().
        if (probe) breaker_.cancel_probe(request.tenant);
        return error_reply(Status::kUnavailable, "server is draining");
      }
      inflight_.emplace(key, future);
      leader = true;
      inflight_gauge.set(static_cast<double>(inflight_.size()));
    }
  }

  if (!leader) {
    coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
    coalesce_hits.add();
  }

  PlanReply reply;
  try {
    {
      // Leaders wait for their own pool submission; followers block on the
      // leader's future ("coalesce wait").  Distinct span names make the two
      // shapes distinguishable in a trace without reading args.
      obs::Span wait_span(leader ? "serve.plan_wait" : "serve.coalesce_wait",
                          "serve");
      future.wait();
    }
    const PlanOutcome& outcome = future.get();
    reply = to_reply(outcome);
    if (outcome.cache_hit && leader) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hits.add();
    }
  } catch (const std::invalid_argument& e) {
    // models::build (unknown model) and Planner argument checks land here.
    reply = error_reply(Status::kNotFound, e.what());
  } catch (const std::exception& e) {
    reply = error_reply(Status::kInternal, e.what());
  }
  reply.coalesced = !leader;

  if (leader) {
    util::MutexLock lock(inflight_mutex_);
    inflight_.erase(key);
    inflight_gauge.set(static_cast<double>(inflight_.size()));
  }

  // Deadline check 3/3: planning finished but too late.  The computed plan
  // stays cached (the NEXT request gets it cheaply); only this reply turns
  // into kDeadlineExceeded.
  if (reply.status == Status::kOk && deadline_expired()) {
    const bool was_coalesced = reply.coalesced;
    reply = deadline_reply("before reply");
    reply.coalesced = was_coalesced;
  }

  if (options_.breaker_enabled) {
    // kInternal (planner broken) and kDeadlineExceeded (planner too slow)
    // are server-health failures; client-caused statuses are not.
    const bool failure = reply.status == Status::kInternal ||
                         reply.status == Status::kDeadlineExceeded;
    breaker_.record(request.tenant, steady_now_ms(), failure,
                    steady_now_ms() - arrival_ms);
    const std::uint64_t opens_now = breaker_.opens();
    const std::uint64_t opens_prev =
        breaker_opens_seen_.exchange(opens_now, std::memory_order_relaxed);
    if (opens_now > opens_prev) breaker_opens.add(opens_now - opens_prev);
    breaker_gauge.set(static_cast<double>(breaker_.open_count()));
  }
  return reply;
}

StatsReply Server::build_stats_reply() {
  static obs::Counter& scrapes = obs::counter("serve.stats_scrapes");
  stats_scrapes_.fetch_add(1, std::memory_order_relaxed);
  scrapes.add();
  StatsReply reply;
  reply.status = Status::kOk;
  reply.json = obs::to_json(obs::MetricsSnapshot::capture());
  return reply;
}

TraceDumpReply Server::build_trace_dump(std::uint32_t max_traces) {
  // Batch cap: a dump reply must stay well under kMaxFrameBytes even with
  // max-span traces, so large recorders drain across several requests
  // (reply.remaining tells the client to come back).
  constexpr std::uint32_t kTraceBatchCap = 32;
  static obs::Counter& dumps = obs::counter("serve.trace_dumps");
  trace_dumps_.fetch_add(1, std::memory_order_relaxed);
  dumps.add();

  std::uint32_t batch = max_traces == 0 ? kTraceBatchCap
                                        : std::min(max_traces, kTraceBatchCap);
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  const std::vector<obs::TraceRecord> records = recorder.drain(batch);
  TraceDumpReply reply;
  reply.status = Status::kOk;
  reply.remaining = static_cast<std::uint32_t>(
      std::min<std::size_t>(recorder.size(), 0xFFFFFFFFu));
  reply.json = obs::flight_records_json(records);
  return reply;
}

void Server::handle_connection(ByteStream& stream) {
  static obs::Counter& protocol_errors = obs::counter("serve.protocol_errors");
  static obs::Histogram& ping_ms = obs::histogram("serve.ping_ms");
  static obs::Gauge& connections_gauge = obs::gauge("serve.connections");

  std::size_t slot;
  {
    util::MutexLock lock(connections_mutex_);
    const auto it =
        std::find(connections_.begin(), connections_.end(), nullptr);
    if (it != connections_.end()) {
      slot = static_cast<std::size_t>(it - connections_.begin());
      *it = &stream;
    } else {
      slot = connections_.size();
      connections_.push_back(&stream);
    }
    connections_gauge.add(1.0);
  }
  obs::Registry::global().set_thread_name("serve-conn-" +
                                          std::to_string(slot));
  // stop() may half-close the stream at any point from here on; every exit
  // path below must unregister the slot.

  while (true) {
    std::optional<std::string> payload;
    try {
      payload = read_frame(stream);
    } catch (const ProtocolError&) {
      // Truncated or oversized frame: the byte stream cannot be
      // resynchronized, so the only safe move is to drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors.add();
      break;
    }
    if (!payload) break;  // clean EOF

    // Answer each frame at the version it arrived with, so one connection
    // may mix v1, v2, and v3 requests (and an unparseable header falls back
    // to the current version for the error reply).
    std::uint8_t version = kVersion;
    std::string out;
    try {
      version = peek_version(*payload);
      switch (peek_op(*payload)) {
        case Op::kPing: {
          obs::ScopedTimer timer(ping_ms);
          out = encode_ping_reply();
          break;
        }
        case Op::kPlan: {
          const PlanRequest request = decode_plan_request(*payload);
          RequestTracer tracer(request);
          const PlanReply reply = process_plan(request);
          tracer.set_outcome(reply);
          // Encoding inside the tracer's lifetime keeps serialization cost
          // attributed to the request's trace.
          obs::Span encode_span("serve.encode", "serve");
          out = encode_plan_reply(reply, version);
          break;
        }
        case Op::kStats:
          decode_stats_request(*payload);  // validates op + version >= 3
          out = encode_stats_reply(build_stats_reply());
          break;
        case Op::kTraceDump:
          out = encode_trace_dump_reply(
              build_trace_dump(decode_trace_dump_request(*payload)));
          break;
        default:
          throw ProtocolError("serve: unexpected op from client");
      }
    } catch (const ProtocolError& e) {
      // The frame boundary held, so the connection is still usable — answer
      // with an error instead of hanging up.  (Introspection ops on a pre-v3
      // frame land here too: the error reply names the version requirement.)
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors.add();
      out = encode_plan_reply(error_reply(Status::kInvalidArgument, e.what()),
                              kVersion);
    }

    try {
      write_frame(stream, out);
    } catch (const std::exception&) {
      break;  // peer went away mid-reply
    }
  }

  // Unregister FIRST (stop() touches streams only under this lock, so after
  // the slot is nulled nobody else holds the pointer), THEN close so the
  // peer sees EOF promptly — especially after an unresynchronizable frame.
  {
    util::MutexLock lock(connections_mutex_);
    connections_[slot] = nullptr;
    connections_gauge.add(-1.0);
  }
  stream.close();
}

void Server::save_snapshot_if_configured() {
  if (options_.snapshot_path.empty()) return;
  static obs::Counter& saves = obs::counter("serve.snapshot_saves");
  try {
    save_cache_snapshot(cache_, options_.snapshot_path);
    snapshot_saves_.fetch_add(1, std::memory_order_relaxed);
    saves.add();
  } catch (const std::exception& e) {
    // A failed save costs warmth after the NEXT restart, never availability
    // now — and the previous snapshot (if any) is still intact.
    util::log_line(util::LogLevel::kWarn, "plan-cache snapshot save failed",
                   {{"path", options_.snapshot_path}, {"error", e.what()}});
  }
}

void Server::stop() {
  // Refuse new work first (idempotent), then serialize the drain itself
  // under stop_mutex_: the previous exchange-and-return-early scheme let a
  // concurrent stop() return after only pool_.shutdown(), BEFORE the winner
  // had half-closed connections, joined the snapshot thread, and saved the
  // final snapshot — so its caller could destroy the Server out from under
  // the still-draining winner.  Every caller now owns the full
  // postcondition when stop() returns (ServerStopRace regression test).
  stopping_.store(true, std::memory_order_release);
  util::MutexLock stop_lock(stop_mutex_);
  if (stop_complete_) return;
  {
    // Lock/unlock pairs with the snapshot thread's predicate re-check, so
    // the notify below cannot slot between its check and its wait.
    util::MutexLock lock(snapshot_mutex_);
  }
  snapshot_cv_.notify_all();
  {
    util::MutexLock lock(connections_mutex_);
    for (ByteStream* stream : connections_)
      if (stream != nullptr) stream->shutdown_read();
  }
  pool_.shutdown();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  // Final save AFTER the pool has drained: every admitted computation's plan
  // is in the cache, so the snapshot a restart warm-starts from is complete.
  save_snapshot_if_configured();
  stop_complete_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.plans_computed = plans_computed_.load(std::memory_order_relaxed);
  s.coalesce_hits = coalesce_hits_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.shed_rate_limited = shed_rate_limited_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.breaker_opens = breaker_.opens();
  s.warm_start_entries = warm_start_entries_.load(std::memory_order_relaxed);
  s.snapshot_saves = snapshot_saves_.load(std::memory_order_relaxed);
  s.stats_scrapes = stats_scrapes_.load(std::memory_order_relaxed);
  s.trace_dumps = trace_dumps_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Server::inflight() const {
  util::MutexLock lock(inflight_mutex_);
  return inflight_.size();
}

}  // namespace jps::serve
