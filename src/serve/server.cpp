#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"

namespace jps::serve {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Coalescing/backpressure key: every field that changes the answer.  The
// bucket's raw bits (not its decimal rendering) so two doubles coalesce
// exactly when the cache would treat them as one key.
std::string inflight_key(const PlanRequest& request, double bucket_mbps) {
  std::string key = request.model;
  key += '|';
  key += std::to_string(static_cast<int>(request.strategy));
  key += '|';
  key += std::to_string(request.n_jobs);
  key += '|';
  key += std::to_string(std::bit_cast<std::uint64_t>(bucket_mbps));
  return key;
}

PlanReply error_reply(Status status, std::string message) {
  PlanReply reply;
  reply.status = status;
  reply.message = std::move(message);
  return reply;
}

}  // namespace

double quantize_bandwidth(double bandwidth_mbps, double step_mbps) {
  const double buckets = std::round(bandwidth_mbps / step_mbps);
  return std::max(1.0, buckets) * step_mbps;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::max<std::size_t>(1, options_.workers)),
      admission_(options_.tenant_rate_per_sec, options_.tenant_burst),
      cache_(std::max<std::size_t>(1, options_.cache_shards)) {
  options_.max_inflight = std::max<std::size_t>(1, options_.max_inflight);
}

Server::~Server() { stop(); }

Server::PlanOutcome Server::compute_plan(const PlanRequest& request,
                                         double bucket_mbps) {
  if (options_.debug_plan_delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.debug_plan_delay_ms));
  }

  std::shared_ptr<const dnn::Graph> graph;
  {
    std::lock_guard lock(graphs_mutex_);
    auto it = graphs_.find(request.model);
    if (it != graphs_.end()) graph = it->second;
  }
  if (!graph) {
    // models::build throws std::invalid_argument for unknown names; the
    // caller maps that to NOT_FOUND.  Build outside the map lock (graph
    // construction is the expensive part); last insert wins harmlessly.
    auto built = std::make_shared<const dnn::Graph>(models::build(request.model));
    std::lock_guard lock(graphs_mutex_);
    graph = graphs_.emplace(request.model, std::move(built)).first->second;
  }

  const net::Channel channel(bucket_mbps);
  const core::CurveCacheKey curve_key(request.model, options_.device.name,
                                      bucket_mbps);
  auto curve = cache_.curve(curve_key, [&] {
    const profile::LatencyModel mobile(options_.device);
    return partition::ProfileCurve::build(*graph, mobile, channel);
  });

  PlanOutcome outcome;
  outcome.bucket_mbps = bucket_mbps;
  bool built = false;
  const core::PlanCacheKey plan_key(request.model, options_.device.name,
                                    bucket_mbps, request.strategy,
                                    request.n_jobs);
  outcome.plan = cache_.plan(plan_key, [&] {
    built = true;
    return core::Planner(*curve).plan(request.strategy, request.n_jobs);
  });
  outcome.cache_hit = !built;
  if (built) plans_computed_.fetch_add(1, std::memory_order_relaxed);
  return outcome;
}

PlanReply Server::to_reply(const PlanOutcome& outcome) const {
  PlanReply reply;
  reply.status = Status::kOk;
  reply.cache_hit = outcome.cache_hit;
  reply.bandwidth_bucket_mbps = outcome.bucket_mbps;
  reply.makespan_ms = outcome.plan->predicted_makespan;
  // Aggregate per-job assignments into a (cut -> count) mix, ascending.
  std::map<std::size_t, std::uint32_t> mix;
  for (const core::JobAssignment& job : outcome.plan->jobs)
    ++mix[job.cut_index];
  reply.mix.reserve(mix.size());
  for (const auto& [cut, count] : mix)
    reply.mix.push_back({static_cast<std::uint32_t>(cut), count});
  return reply;
}

PlanReply Server::handle_plan(const PlanRequest& request) {
  static obs::Counter& requests_total = obs::counter("serve.requests");
  static obs::Counter& coalesce_hits = obs::counter("serve.coalesce_hits");
  static obs::Counter& cache_hits = obs::counter("serve.cache_hits");
  static obs::Counter& shed_rate = obs::counter("serve.shed_rate_limited");
  static obs::Counter& shed_overload = obs::counter("serve.shed_overload");
  static obs::Histogram& plan_ms = obs::histogram("serve.plan_ms");
  static obs::Gauge& inflight_gauge = obs::gauge("serve.inflight");

  obs::ScopedTimer timer(plan_ms);
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_total.add();

  if (stopping_.load(std::memory_order_acquire))
    return error_reply(Status::kUnavailable, "server is draining");

  if (!std::isfinite(request.bandwidth_mbps) || request.bandwidth_mbps <= 0.0)
    return error_reply(Status::kInvalidArgument,
                       "bandwidth_mbps must be finite and > 0");
  if (request.n_jobs < 1)
    return error_reply(Status::kInvalidArgument, "n_jobs must be >= 1");
  if (request.strategy == core::Strategy::kBruteForce ||
      request.strategy == core::Strategy::kRobust)
    return error_reply(Status::kInvalidArgument,
                       std::string("strategy ") +
                           core::strategy_name(request.strategy) +
                           " is not servable");

  if (!admission_.admit(request.tenant, steady_now_ms())) {
    shed_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    shed_rate.add();
    return error_reply(Status::kResourceExhausted,
                       "tenant '" + request.tenant + "' over rate limit");
  }

  const double bucket =
      quantize_bandwidth(request.bandwidth_mbps, options_.bandwidth_bucket_mbps);
  const std::string key = inflight_key(request, bucket);

  std::shared_future<PlanOutcome> future;
  bool leader = false;
  {
    std::lock_guard lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      if (inflight_.size() >= options_.max_inflight) {
        shed_overload_.fetch_add(1, std::memory_order_relaxed);
        shed_overload.add();
        return error_reply(Status::kResourceExhausted,
                           "server overloaded (" +
                               std::to_string(inflight_.size()) +
                               " computations in flight)");
      }
      try {
        future = pool_.submit([this, request, bucket] {
                        return compute_plan(request, bucket);
                      })
                     .share();
      } catch (const std::exception&) {
        // Pool already shut down: we lost the race with stop().
        return error_reply(Status::kUnavailable, "server is draining");
      }
      inflight_.emplace(key, future);
      leader = true;
      inflight_gauge.set(static_cast<double>(inflight_.size()));
    }
  }

  if (!leader) {
    coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
    coalesce_hits.add();
  }

  PlanReply reply;
  try {
    const PlanOutcome& outcome = future.get();
    reply = to_reply(outcome);
    if (outcome.cache_hit && leader) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hits.add();
    }
  } catch (const std::invalid_argument& e) {
    // models::build (unknown model) and Planner argument checks land here.
    reply = error_reply(Status::kNotFound, e.what());
  } catch (const std::exception& e) {
    reply = error_reply(Status::kInternal, e.what());
  }
  reply.coalesced = !leader;

  if (leader) {
    std::lock_guard lock(inflight_mutex_);
    inflight_.erase(key);
    inflight_gauge.set(static_cast<double>(inflight_.size()));
  }
  return reply;
}

void Server::handle_connection(ByteStream& stream) {
  static obs::Counter& protocol_errors = obs::counter("serve.protocol_errors");
  static obs::Histogram& ping_ms = obs::histogram("serve.ping_ms");
  static obs::Gauge& connections_gauge = obs::gauge("serve.connections");

  std::size_t slot;
  {
    std::lock_guard lock(connections_mutex_);
    const auto it =
        std::find(connections_.begin(), connections_.end(), nullptr);
    if (it != connections_.end()) {
      slot = static_cast<std::size_t>(it - connections_.begin());
      *it = &stream;
    } else {
      slot = connections_.size();
      connections_.push_back(&stream);
    }
    connections_gauge.add(1.0);
  }
  // stop() may half-close the stream at any point from here on; every exit
  // path below must unregister the slot.

  while (true) {
    std::optional<std::string> payload;
    try {
      payload = read_frame(stream);
    } catch (const ProtocolError&) {
      // Truncated or oversized frame: the byte stream cannot be
      // resynchronized, so the only safe move is to drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors.add();
      break;
    }
    if (!payload) break;  // clean EOF

    PlanReply reply;
    bool is_ping = false;
    try {
      switch (peek_op(*payload)) {
        case Op::kPing:
          is_ping = true;
          break;
        case Op::kPlan:
          reply = handle_plan(decode_plan_request(*payload));
          break;
        default:
          throw ProtocolError("serve: unexpected op from client");
      }
    } catch (const ProtocolError& e) {
      // The frame boundary held, so the connection is still usable — answer
      // with an error instead of hanging up.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      protocol_errors.add();
      reply = error_reply(Status::kInvalidArgument, e.what());
    }

    try {
      if (is_ping) {
        obs::ScopedTimer timer(ping_ms);
        write_frame(stream, encode_ping_reply());
      } else {
        write_frame(stream, encode_plan_reply(reply));
      }
    } catch (const std::exception&) {
      break;  // peer went away mid-reply
    }
  }

  // Unregister FIRST (stop() touches streams only under this lock, so after
  // the slot is nulled nobody else holds the pointer), THEN close so the
  // peer sees EOF promptly — especially after an unresynchronizable frame.
  {
    std::lock_guard lock(connections_mutex_);
    connections_[slot] = nullptr;
    connections_gauge.add(-1.0);
  }
  stream.close();
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Another stop() is (or was) draining; wait for the pool regardless so
    // every caller of stop() gets the "all work done" postcondition.
    pool_.shutdown();
    return;
  }
  {
    std::lock_guard lock(connections_mutex_);
    for (ByteStream* stream : connections_)
      if (stream != nullptr) stream->shutdown_read();
  }
  pool_.shutdown();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.plans_computed = plans_computed_.load(std::memory_order_relaxed);
  s.coalesce_hits = coalesce_hits_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.shed_rate_limited = shed_rate_limited_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Server::inflight() const {
  std::lock_guard lock(inflight_mutex_);
  return inflight_.size();
}

}  // namespace jps::serve
