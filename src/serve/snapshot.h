// Crash-safe plan-cache snapshots: warm-start for a restarted plan server.
//
// A restarted server with a cold ShardedPlanCache sends every tenant's
// first request to the Planner at once — a thundering herd against the most
// expensive path in the process.  This module serializes the cache's plan
// table to a versioned, CRC-checked binary file and reloads it at startup,
// so a restart answers from warm cache.
//
// Format (all integers little-endian):
//
//   bytes 0..7  magic "JPSSNAP\n"
//   u32         format version (1)
//   u32         entry count
//   entries     str16 model | str16 device | f64 bandwidth_mbps
//               | u8 strategy | u32 n_jobs
//               | u32 plan_len | plan_len bytes (core::serialize_plan text)
//   u32         CRC-32 of everything above
//
// Embedding the existing "jps-plan v1" text per entry reuses its exact
// double round-trip and its lint-on-parse admission — a snapshot entry that
// would not pass `jps_lint` does not enter the cache.
//
// Durability rules:
//   * save is ATOMIC: write to "<path>.tmp", fsync-free rename over the
//     destination.  A crash mid-save leaves the previous snapshot intact.
//   * load NEVER throws and never partially applies: a missing file is a
//     normal cold start; a corrupt/truncated/unparseable snapshot is
//     detected (CRC first, then per-entry parse), logged via util::log, and
//     ignored wholesale.  A bad snapshot can cost warmth, never correctness.
//
// Only the plan table is persisted.  Curves are bigger, cheaper to rebuild
// relative to their size, and derivable on demand; the breaker's degraded
// mode needs exactly the plan table to serve stale answers after a restart.
#pragma once

#include <cstddef>
#include <string>

#include "core/plan_cache.h"

namespace jps::serve {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotLoadResult {
  /// False only when a snapshot existed but was rejected (corrupt,
  /// truncated, wrong version, unparseable entry).  A missing file is a
  /// clean cold start: ok == true, entries == 0.
  bool ok = true;
  /// Entries inserted into the cache.
  std::size_t entries = 0;
  /// Why the snapshot was rejected (empty when ok).
  std::string error;
};

/// Serialize the cache's plan table (deterministic: entries sorted by key).
[[nodiscard]] std::string encode_cache_snapshot(
    const core::ShardedPlanCache& cache);

/// Decode `bytes` and insert every entry into `cache` (first insert wins —
/// already-cached keys keep their value).  All-or-nothing: nothing is
/// inserted unless the whole snapshot validates.
[[nodiscard]] SnapshotLoadResult decode_cache_snapshot(
    const std::string& bytes, core::ShardedPlanCache& cache);

/// Atomically write encode_cache_snapshot() to `path` (tmp + rename).
/// Throws std::runtime_error on I/O failure.
void save_cache_snapshot(const core::ShardedPlanCache& cache,
                         const std::string& path);

/// Load `path` into `cache`.  Never throws: rejection reasons come back in
/// the result (and are logged), missing files are a clean cold start.
[[nodiscard]] SnapshotLoadResult load_cache_snapshot(
    core::ShardedPlanCache& cache, const std::string& path);

}  // namespace jps::serve
