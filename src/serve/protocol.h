// Wire protocol of the plan server: length-prefixed binary frames.
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bits):
//
//   frame   := u32 payload_length | payload           (length excludes itself)
//   payload := u8 magic (0x4A 'J') | u8 version (1..3) | u8 op | body
//
// Ops and bodies:
//
//   kPlan (1) — plan request
//     body := str16 tenant | str16 model | f64 bandwidth_mbps
//             | u8 strategy | u32 n_jobs
//             | f64 deadline_ms                        (version >= 2 only)
//             | u64 trace_hi | u64 trace_lo
//             | u64 trace_parent_span                  (version >= 3 only)
//   kPing (2) — liveness probe; empty body
//   kStats (3) — v3 only: live metrics scrape; empty body
//   kTraceDump (4) — v3 only: drain the flight recorder
//     body := u32 max_traces                           (0 = server's batch cap)
//   kPlanReply (129)
//     body := u8 status | u8 flags | str16 message
//             | f64 bandwidth_bucket_mbps | f64 makespan_ms
//             | u32 mix_count | mix_count * (u32 cut | u32 count)
//   kPingReply (130) — empty body
//   kStatsReply (131) — v3 only
//     body := u8 status | str32 json     (a MetricsSnapshot, obs::to_json)
//   kTraceDumpReply (132) — v3 only
//     body := u8 status | u32 remaining | str32 json
//             (json = obs::flight_records_json; `remaining` traces are still
//              queued server-side — issue further kTraceDump frames to drain)
//
//   str16 := u16 length | bytes (no terminator)
//   str32 := u32 length | bytes (no terminator; bounded by kMaxFrameBytes)
//   flags: bit 0 = coalesced (this reply shared another request's
//          computation), bit 1 = cache_hit (the plan came out of the
//          PlanCache rather than a fresh Planner run), bit 2 = stale (a
//          degraded-mode reply: the plan came from a nearby bandwidth
//          bucket while the tenant's breaker is open).  Decoders ignore
//          unknown flag bits, which is what makes adding bits minor-
//          version-compatible.
//
// Versioning: version 2 added the plan request's trailing deadline_ms and
// the kDeadlineExceeded/kOkStale statuses.  Servers accept any version in
// [kMinVersion, kVersion] and answer each frame at the version it arrived
// with: a v1 request simply has no deadline, and a v1 reply downgrades
// kOkStale to kOk + the stale flag bit (old decoders ignore the bit;
// new ones recover staleness from it) and kDeadlineExceeded to
// kUnavailable (both are "retry later" to a v1 client).
//
// Version 3 added the plan request's trailing trace context (an all-zero
// context means "not traced" — exactly how a v1/v2 frame decodes) and the
// introspection ops kStats/kTraceDump with their replies.  The
// introspection ops exist only in v3: their decoders throw ProtocolError
// for older versions, since an old peer could never have sent them.
//
// A payload longer than kMaxFrameBytes is a protocol error: the reader
// refuses it *before* allocating, so a hostile or corrupt length prefix
// cannot balloon memory.  Truncated input (EOF mid-prefix or mid-payload)
// is also a ProtocolError — distinct from a clean EOF at a frame boundary,
// which read_frame reports as nullopt.
//
// Decoders never trust the remote side: every read is bounds-checked and
// malformed payloads throw ProtocolError, which the server maps to an
// error reply (or a connection close when the stream can no longer be
// resynchronized) — never a crash of the connection loop.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/plan.h"
#include "serve/transport.h"

namespace jps::serve {

inline constexpr std::uint8_t kMagic = 0x4A;
/// Current (preferred) protocol version; encoders default to it.
inline constexpr std::uint8_t kVersion = 3;
/// Oldest version still accepted — deployed v1 clients keep working.
inline constexpr std::uint8_t kMinVersion = 1;
/// Largest accepted payload.  Plan replies are ~tens of bytes per distinct
/// cut; 1 MiB leaves three orders of magnitude of headroom.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class Op : std::uint8_t {
  kPlan = 1,
  kPing = 2,
  kStats = 3,      // v3
  kTraceDump = 4,  // v3
  kPlanReply = 129,
  kPingReply = 130,
  kStatsReply = 131,      // v3
  kTraceDumpReply = 132,  // v3
};

/// Reply status (gRPC-style vocabulary).
enum class Status : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // malformed request (NaN bandwidth, n_jobs < 1, ...)
  kNotFound = 2,          // unknown model id
  kResourceExhausted = 3, // shed: tenant over rate limit or queue bound hit
  kUnavailable = 4,       // server draining/stopped, or breaker open with
                          // no stale plan to degrade to
  kInternal = 5,          // planning threw (bug; message carries the what())
  kDeadlineExceeded = 6,  // v2: the request's deadline passed server-side
  kOkStale = 7,           // v2: degraded mode — a usable plan from a nearby
                          // bandwidth bucket, served while the tenant's
                          // breaker is open
};

[[nodiscard]] const char* status_name(Status status);

/// True for statuses a client may retry (the server's condition is
/// transient): kUnavailable and kDeadlineExceeded.
[[nodiscard]] bool status_is_retryable(Status status);

/// Malformed or truncated wire data.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer vanished mid-conversation: a frame truncated by EOF, or a
/// connection that closed before the expected reply.  A subclass of
/// ProtocolError (every existing catch still works) that callers may treat
/// as retryable — the bytes that DID arrive were well-formed; the failure
/// is the transport's, not the peer's encoder's.
class TransportError : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

struct PlanRequest {
  /// Admission-control identity; "" is a valid (anonymous) tenant.
  std::string tenant;
  std::string model;
  /// The device's live uplink estimate; quantized server-side.
  double bandwidth_mbps = 0.0;
  core::Strategy strategy = core::Strategy::kJPS;
  std::int32_t n_jobs = 1;
  /// Relative budget, measured from server-side arrival (no clock sync
  /// needed): the server answers kDeadlineExceeded once the budget is
  /// spent.  0 means no deadline.  Wire version >= 2 only; decoding a v1
  /// request leaves it 0.
  double deadline_ms = 0.0;
  /// Client trace context (obs::TraceContext): the 128-bit trace id plus
  /// the client-side span the server's root span should parent onto.  All
  /// zero means "not traced" — the value v1/v2 frames decode to.  Wire
  /// version >= 3 only.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t trace_parent_span = 0;

  friend bool operator==(const PlanRequest&, const PlanRequest&) = default;
};

/// One (cut index, job count) entry of the reply's cut mix.
struct CutMix {
  std::uint32_t cut = 0;
  std::uint32_t count = 0;

  friend bool operator==(const CutMix&, const CutMix&) = default;
};

struct PlanReply {
  Status status = Status::kOk;
  /// Human-readable detail for non-OK statuses.
  std::string message;
  /// This reply shared a concurrent identical request's computation.
  bool coalesced = false;
  /// The plan came from the PlanCache (no Planner run for this request).
  bool cache_hit = false;
  /// Degraded mode: the plan was computed for a NEARBY bandwidth bucket
  /// (reported in bandwidth_bucket_mbps) while the tenant's breaker was
  /// open.  True exactly when the stale flag bit is set; survives the
  /// v1 status downgrade of kOkStale to kOk.
  bool stale = false;
  /// The quantized bandwidth the plan was actually computed at.
  double bandwidth_bucket_mbps = 0.0;
  double makespan_ms = 0.0;
  /// Scheduled cut mix, ascending by cut index; counts sum to n_jobs.
  std::vector<CutMix> mix;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  /// The reply carries a usable plan (fresh or degraded-mode stale).
  [[nodiscard]] bool has_plan() const {
    return status == Status::kOk || status == Status::kOkStale;
  }

  friend bool operator==(const PlanReply&, const PlanReply&) = default;
};

/// Reply to kStats: the server's live MetricsSnapshot as obs::to_json text.
struct StatsReply {
  Status status = Status::kOk;
  std::string json;

  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

/// Reply to kTraceDump: one drained batch of flight-recorder traces
/// (obs::flight_records_json) plus how many retained traces remain queued.
struct TraceDumpReply {
  Status status = Status::kOk;
  std::uint32_t remaining = 0;
  std::string json;

  friend bool operator==(const TraceDumpReply&, const TraceDumpReply&) =
      default;
};

/// Payload encoders (everything after the length prefix).  `version` lets
/// the server answer a v1 client in v1 (and tests emit old-client frames);
/// it must lie in [kMinVersion, kVersion].  The introspection encoders
/// additionally require version >= 3.
[[nodiscard]] std::string encode_plan_request(const PlanRequest& request,
                                              std::uint8_t version = kVersion);
[[nodiscard]] std::string encode_plan_reply(const PlanReply& reply,
                                            std::uint8_t version = kVersion);
[[nodiscard]] std::string encode_ping();
[[nodiscard]] std::string encode_ping_reply();
[[nodiscard]] std::string encode_stats_request(std::uint8_t version = kVersion);
[[nodiscard]] std::string encode_stats_reply(const StatsReply& reply,
                                             std::uint8_t version = kVersion);
[[nodiscard]] std::string encode_trace_dump_request(
    std::uint32_t max_traces = 0, std::uint8_t version = kVersion);
[[nodiscard]] std::string encode_trace_dump_reply(
    const TraceDumpReply& reply, std::uint8_t version = kVersion);

/// Payload decoders; throw ProtocolError on bad magic/version/op, a
/// truncated body, or trailing bytes.
[[nodiscard]] Op peek_op(std::string_view payload);
/// The version byte of a payload (validated against [kMinVersion,
/// kVersion]); the server answers each frame at the version it arrived in.
[[nodiscard]] std::uint8_t peek_version(std::string_view payload);
[[nodiscard]] PlanRequest decode_plan_request(std::string_view payload);
[[nodiscard]] PlanReply decode_plan_reply(std::string_view payload);
/// v3-only decoders (ProtocolError when the frame's version is older).
/// A kStats request has an empty body; decoding it only validates the frame.
void decode_stats_request(std::string_view payload);
[[nodiscard]] std::uint32_t decode_trace_dump_request(
    std::string_view payload);
[[nodiscard]] StatsReply decode_stats_reply(std::string_view payload);
[[nodiscard]] TraceDumpReply decode_trace_dump_reply(
    std::string_view payload);

/// Write one frame (length prefix + payload).
void write_frame(ByteStream& stream, std::string_view payload);

/// Read one frame's payload.  nullopt on clean EOF (connection ended at a
/// frame boundary); TransportError on truncation mid-frame (the peer died,
/// retryable); plain ProtocolError on an oversized length prefix (the peer
/// is broken, not retryable).  TransportTimeout from a timed stream
/// propagates unchanged.
[[nodiscard]] std::optional<std::string> read_frame(ByteStream& stream);

}  // namespace jps::serve
