// Byte transports for the plan server: an in-process pipe pair (tests,
// selfcheck, benches — no real network, no ports, deterministic teardown)
// and blocking loopback/TCP sockets (the jps_serve daemon).
//
// The server and client only ever see the ByteStream interface, so every
// protocol and concurrency test runs against the exact code path the
// socket daemon uses — the transports differ only below read()/write().
//
// Shutdown vocabulary (CycloneDDS-style half-close):
//   * close()          — tear down both directions; a blocked reader wakes
//                        with EOF, a blocked writer fails.
//   * shutdown_read()  — stop only the incoming direction.  This is the
//                        server's drain primitive: the connection loop sees
//                        EOF at the next frame boundary while replies for
//                        requests already admitted still flow out.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace jps::serve {

/// A read() exceeded the stream's configured read timeout.  Distinct from
/// EOF (the peer may still be alive, just slow) and from ProtocolError (the
/// bytes that did arrive were fine) — serve::Client treats it as retryable.
class TransportTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A blocking, connected, bidirectional byte stream.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Read up to `max` bytes into `out`; blocks until at least one byte is
  /// available.  Returns the number of bytes read, or 0 on EOF (peer closed
  /// or shutdown_read()).  Throws TransportTimeout when a read deadline is
  /// set (set_read_timeout_ms) and no byte arrives in time.
  [[nodiscard]] virtual std::size_t read(char* out, std::size_t max) = 0;

  /// Write all `size` bytes.  Throws std::runtime_error when the peer is
  /// gone or the stream is closed.
  virtual void write(const char* data, std::size_t size) = 0;

  /// Stop the incoming direction only: a blocked read() (and every later
  /// one) returns 0 once buffered bytes are drained; write() keeps working.
  virtual void shutdown_read() = 0;

  /// Tear down both directions.  Idempotent.
  virtual void close() = 0;

  /// Per-read() deadline: a read that sees no byte for `ms` milliseconds
  /// throws TransportTimeout instead of blocking forever (a peer that
  /// accepts then stalls must not hang the caller).  <= 0 restores
  /// block-forever.  Sockets implement this with SO_RCVTIMEO; pipes with a
  /// timed condition wait.
  virtual void set_read_timeout_ms(double ms) = 0;
};

/// Non-owning view of a shared stream end, forwarding every call.  Client
/// wants sole ownership of its ByteStream; tests, selfcheck, and benches
/// want to keep a handle to the same end (to sever or inspect it mid-run) —
/// they hold the shared_ptr and hand the Client a BorrowedStream.
class BorrowedStream final : public ByteStream {
 public:
  explicit BorrowedStream(std::shared_ptr<ByteStream> target)
      : target_(std::move(target)) {}

  [[nodiscard]] std::size_t read(char* out, std::size_t max) override {
    return target_->read(out, max);
  }
  void write(const char* data, std::size_t size) override {
    target_->write(data, size);
  }
  void shutdown_read() override { target_->shutdown_read(); }
  void close() override { target_->close(); }
  void set_read_timeout_ms(double ms) override {
    target_->set_read_timeout_ms(ms);
  }

 private:
  std::shared_ptr<ByteStream> target_;
};

/// Two connected in-process endpoints: bytes written to one are read from
/// the other, through bounded buffers (`capacity` bytes per direction, so a
/// stalled reader backpressures the writer just like a TCP window).
struct StreamPair {
  std::unique_ptr<ByteStream> first;
  std::unique_ptr<ByteStream> second;
};
[[nodiscard]] StreamPair make_in_process_pair(std::size_t capacity = 64 * 1024);

/// Accepts connections for Server::serve.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a connection arrives; nullptr once close() was called.
  [[nodiscard]] virtual std::unique_ptr<ByteStream> accept() = 0;

  /// Unblock accept() permanently.  Idempotent, callable from any thread
  /// (including a signal-triggered shutdown path).
  virtual void close() = 0;
};

/// Blocking TCP listener bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port; see port()).  Throws std::runtime_error when the socket cannot be
/// bound.
class SocketListener final : public Listener {
 public:
  explicit SocketListener(std::uint16_t port);
  ~SocketListener() override;

  [[nodiscard]] std::unique_ptr<ByteStream> accept() override;
  void close() override;

  /// The bound port (the chosen one when constructed with 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  // Atomic: close() races a blocked accept() by design (drain path, signal
  // handler), and a lock-free exchange keeps it async-signal-safe.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Connect to a jps_serve daemon.  Throws std::runtime_error on failure.
[[nodiscard]] std::unique_ptr<ByteStream> socket_connect(
    const std::string& host, std::uint16_t port);

}  // namespace jps::serve
