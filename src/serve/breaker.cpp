#include "serve/breaker.h"

#include <algorithm>

namespace jps::serve {

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options) {
  options_.window = std::max<std::size_t>(1, options_.window);
  options_.min_samples =
      std::clamp<std::size_t>(options_.min_samples, 1, options_.window);
}

void CircuitBreaker::push_outcome(Tenant& t, bool failure) {
  t.outcomes.push_back(failure);
  if (failure) ++t.failures;
  while (t.outcomes.size() > options_.window) {
    if (t.outcomes.front()) --t.failures;
    t.outcomes.pop_front();
  }
}

CircuitBreaker::Decision CircuitBreaker::admit(const std::string& tenant,
                                               double now_ms) {
  util::MutexLock lock(mutex_);
  Tenant& t = tenants_[tenant];
  switch (t.state) {
    case State::kClosed:
      return Decision::kClosed;
    case State::kOpen:
      if (now_ms - t.opened_at_ms >= options_.cooldown_ms) {
        t.state = State::kHalfOpen;
        t.probe_inflight = true;
        return Decision::kProbe;
      }
      return Decision::kOpen;
    case State::kHalfOpen:
      if (!t.probe_inflight) {
        t.probe_inflight = true;
        return Decision::kProbe;
      }
      return Decision::kOpen;  // one probe at a time
  }
  return Decision::kClosed;
}

void CircuitBreaker::record(const std::string& tenant, double now_ms,
                            bool failure, double latency_ms) {
  util::MutexLock lock(mutex_);
  Tenant& t = tenants_[tenant];
  const bool slow = options_.latency_threshold_ms > 0.0 &&
                    latency_ms > options_.latency_threshold_ms;
  const bool bad = failure || slow;

  if (t.state == State::kHalfOpen && t.probe_inflight) {
    // The probe settles the breaker: recovery resets history (the window's
    // failures belong to the outage era), relapse re-arms the cooldown.
    t.probe_inflight = false;
    if (bad) {
      t.state = State::kOpen;
      t.opened_at_ms = now_ms;
    } else {
      t.state = State::kClosed;
      t.outcomes.clear();
      t.failures = 0;
    }
    return;
  }
  if (t.state != State::kClosed) return;  // stragglers from the pre-open era

  push_outcome(t, bad);
  if (t.outcomes.size() >= options_.min_samples &&
      static_cast<double>(t.failures) >=
          options_.failure_ratio * static_cast<double>(t.outcomes.size())) {
    t.state = State::kOpen;
    t.opened_at_ms = now_ms;
    ++opens_;
  }
}

void CircuitBreaker::cancel_probe(const std::string& tenant) {
  util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.state == State::kHalfOpen)
    it->second.probe_inflight = false;
}

bool CircuitBreaker::open(const std::string& tenant, double now_ms) const {
  (void)now_ms;  // openness is settled by admit/record, not wall time
  util::MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.state != State::kClosed;
}

std::uint64_t CircuitBreaker::opens() const {
  util::MutexLock lock(mutex_);
  return opens_;
}

std::size_t CircuitBreaker::open_count() const {
  util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, t] : tenants_) {
    (void)name;
    if (t.state != State::kClosed) ++n;
  }
  return n;
}

}  // namespace jps::serve
