// The multi-tenant plan server: admission, coalescing, caching, backpressure.
//
// A fleet of mobile devices keeps asking one question — "given my model, my
// device class and my current uplink, how should I split and order my
// jobs?" — and the answer is a pure function of (model, strategy, n_jobs,
// bandwidth).  This server turns the repo's Planner into a long-running
// service around that purity:
//
//   * Bandwidth quantization — live uplink estimates are noisy; requests
//     are snapped to `bandwidth_bucket_mbps` buckets so nearby estimates
//     share one answer.  The reply reports the bucket actually planned at.
//   * Request coalescing — concurrent requests for the same (model,
//     strategy, n_jobs, bucket) share ONE Planner run via a shared_future
//     map: the first arrival (the leader) computes, everyone else joins.
//   * Plan caching — completed answers land in a ShardedPlanCache, so a
//     repeat request after the burst has passed is a lock-striped lookup.
//   * Admission control — a token bucket per tenant id sheds chatty tenants
//     with RESOURCE_EXHAUSTED before any planning work is queued.
//   * Backpressure — at most `max_inflight` distinct computations may be in
//     flight; beyond that new leaders are shed with RESOURCE_EXHAUSTED
//     instead of queueing unboundedly ("fail fast beats fail late").
//
// Transport: handle_connection() speaks the serve/protocol.h framing over
// any ByteStream, so tests drive the full server through in-process pipes
// and the jps_serve daemon runs the same loop over accepted sockets.  The
// connection loop never lets an exception escape: malformed payloads get an
// error reply, unframeable streams are closed.
//
// Resilience (PR 8 — see docs/ROBUSTNESS.md "Serve-path resilience"):
//   * Deadlines — a v2 request may carry a relative deadline_ms budget,
//     checked at admission, before planning, and again before the reply;
//     an expired request answers kDeadlineExceeded immediately instead of
//     occupying the planner (a computed plan still lands in the cache).
//   * Circuit breaker — per-tenant rolling failure window (serve/breaker.h);
//     when open, requests skip planning and degrade to the nearest-
//     bandwidth stale plan from the cache, tagged kOkStale.  No stale
//     candidate => kUnavailable.
//   * Snapshots — with options.snapshot_path set, the plan cache is
//     reloaded at startup and saved atomically on drain (and every
//     snapshot_interval_ms while running), so a restart answers from warm
//     cache instead of stampeding the planner (serve/snapshot.h).
//
// Observability (PR 10 — see docs/OBSERVABILITY.md "Request tracing"):
//   * Tracing — every request runs under an obs::TraceContext (adopted from
//     a v3 frame's trace fields, or minted fresh), so its admission /
//     coalesce-wait / cache-lookup / plan-compute / encode spans form one
//     causal tree across the connection thread and the pool worker.
//   * Flight recorder — completed traces are retained tail-based in the
//     process-wide obs::FlightRecorder (errors + latency outliers always,
//     the rest sampled) until a kTraceDump drains them.
//   * Introspection — kStats answers with a live MetricsSnapshot as JSON;
//     kTraceDump drains recorded traces; both are served inline on the
//     connection thread without touching the planner pool.
//
// Drain: stop() flips the server to UNAVAILABLE, half-closes the read side
// of every active connection (loops exit at the next frame boundary while
// in-flight replies still flow out), then ThreadPool::shutdown() guarantees
// every admitted computation has completed before stop() returns.
//
// Replies are bit-identical to a direct
//   Planner(ProfileCurve::build(models::build(m), LatencyModel(device),
//                               Channel(bucket))).plan(strategy, n)
// — the serve layer adds routing, never arithmetic.  Metrics: see
// docs/SERVING.md for the instrument table.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/plan_cache.h"
#include "profile/device.h"
#include "serve/admission.h"
#include "serve/breaker.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace jps::serve {

/// Round `bandwidth_mbps` to the nearest positive multiple of `step_mbps`
/// (the bucket all coalescing/caching keys on).  A rounded-to-zero estimate
/// snaps up to one step so the planner never sees a zero-bandwidth channel.
/// Precondition: both arguments finite and > 0.
[[nodiscard]] double quantize_bandwidth(double bandwidth_mbps,
                                        double step_mbps);

struct ServerOptions {
  /// Planner worker threads (the pool all plan computations run on).
  std::size_t workers = 4;
  /// Bound on distinct computations in flight; further leaders are shed
  /// with RESOURCE_EXHAUSTED.  Clamped to at least 1.
  std::size_t max_inflight = 8;
  /// Bandwidth quantization step (Mbps).
  double bandwidth_bucket_mbps = 0.25;
  /// Per-tenant admission rate; <= 0 disables admission control.
  double tenant_rate_per_sec = 0.0;
  /// Per-tenant burst allowance (token bucket capacity).
  double tenant_burst = 16.0;
  /// Lock stripes of the plan cache.
  std::size_t cache_shards = 8;
  /// Device whose latency model plans are computed against.
  profile::DeviceProfile device = profile::DeviceProfile::raspberry_pi_4b();
  /// Per-tenant circuit breaker (degraded mode).  The defaults need >= 8
  /// failed outcomes in a 32-request window, which no healthy workload
  /// reaches; set breaker_enabled = false to disable entirely.
  bool breaker_enabled = true;
  BreakerOptions breaker{};
  /// Plan-cache snapshot file for crash-safe warm-start; "" disables.
  /// Loaded at construction, saved atomically on drain.
  std::string snapshot_path;
  /// > 0: additionally save the snapshot every this-many ms while running.
  double snapshot_interval_ms = 0.0;
  /// Test hook: artificial delay inside each Planner run (ms).  Lets tests
  /// hold a leader's computation open deterministically to observe
  /// coalescing and overload shedding.  0 in production.
  double debug_plan_delay_ms = 0.0;
  /// Test hook: artificial delay before the admission deadline check (ms).
  /// Lets tests expire a request's deadline deterministically server-side.
  double debug_admission_delay_ms = 0.0;
  /// Request-scoped tracing into the process-wide obs::FlightRecorder.
  /// When enabled (default), every request runs under a TraceContext, its
  /// spans are collected per trace, and completed traces are retained
  /// tail-based for the kTraceDump introspection op.  Construction applies
  /// these to the GLOBAL recorder (last server built wins).
  bool flight_recorder_enabled = true;
  /// Ring capacity / head-sampling rate overrides; 0 keeps the recorder's
  /// defaults (128 traces, 1-in-8).
  std::size_t flight_recorder_capacity = 0;
  std::uint64_t flight_recorder_sample_every = 0;
};

/// Point-in-time counters (also mirrored into jps::obs as serve.*).
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t plans_computed = 0;
  std::uint64_t coalesce_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_overload = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t deadline_exceeded = 0;
  /// Degraded-mode replies served from a stale bucket (kOkStale).
  std::uint64_t stale_served = 0;
  /// Closed -> open breaker transitions across all tenants.
  std::uint64_t breaker_opens = 0;
  /// Entries reloaded from the snapshot at startup.
  std::uint64_t warm_start_entries = 0;
  /// Successful snapshot saves (timer + drain).
  std::uint64_t snapshot_saves = 0;
  /// Live introspection ops answered (kStats / kTraceDump frames).
  std::uint64_t stats_scrapes = 0;
  std::uint64_t trace_dumps = 0;

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_rate_limited + shed_overload;
  }
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Answer one request directly (no transport).  Never throws: failures
  /// come back as non-OK statuses.  This is the exact computation
  /// handle_connection performs per kPlan frame.
  [[nodiscard]] PlanReply handle_plan(const PlanRequest& request);

  /// Serve one connection on the calling thread until the peer closes (or
  /// stop() half-closes it).  Frame/decoding errors never escape: payloads
  /// that parse as no known request get an INVALID_ARGUMENT reply; streams
  /// broken mid-frame are closed.  The daemon runs one thread per accepted
  /// socket; tests call this with an in-process stream.
  void handle_connection(ByteStream& stream);

  /// Drain: refuse new work (UNAVAILABLE), half-close active connections,
  /// and join the worker pool.  Every admitted computation completes before
  /// stop() returns.  Idempotent.
  void stop();

  [[nodiscard]] bool stopped() const {
    return stopping_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  /// Distinct computations currently in flight (leaders, not joiners).
  [[nodiscard]] std::size_t inflight() const;
  [[nodiscard]] const core::ShardedPlanCache& cache() const { return cache_; }

 private:
  struct PlanOutcome {
    std::shared_ptr<const core::ExecutionPlan> plan;
    bool cache_hit = false;
    double bucket_mbps = 0.0;
  };

  /// handle_plan without the request tracer (handle_connection runs its own
  /// tracer so the encode span joins the same trace).
  [[nodiscard]] PlanReply process_plan(const PlanRequest& request);
  /// One drained flight-recorder batch for a kTraceDump frame.
  [[nodiscard]] TraceDumpReply build_trace_dump(std::uint32_t max_traces);
  /// The server's live metrics snapshot for a kStats frame.
  [[nodiscard]] StatsReply build_stats_reply();
  /// The Planner run (graph -> curve -> plan) behind every leader.
  [[nodiscard]] PlanOutcome compute_plan(const PlanRequest& request,
                                         double bucket_mbps);
  [[nodiscard]] PlanReply to_reply(const PlanOutcome& outcome) const;
  /// Degraded-mode reply for an open breaker: nearest-bucket stale plan
  /// (kOkStale) or kUnavailable when the cache has no candidate.
  [[nodiscard]] PlanReply stale_reply(const PlanRequest& request,
                                      double bucket_mbps);
  /// Write the snapshot if configured; never throws (failures are logged).
  void save_snapshot_if_configured();

  ServerOptions options_;
  util::ThreadPool pool_;
  TenantAdmission admission_;
  core::ShardedPlanCache cache_;
  CircuitBreaker breaker_;

  std::atomic<bool> stopping_{false};

  // Serializes the drain itself: every stop() caller — not just the first —
  // returns only after connections are half-closed, the snapshot thread is
  // joined, and the final snapshot is saved.  Before this lock existed, a
  // second concurrent stop() returned early and its caller could destroy
  // the Server while the first was still draining.
  util::Mutex stop_mutex_{"serve.server.stop"};
  bool stop_complete_ JPS_GUARDED_BY(stop_mutex_) = false;

  // Periodic snapshot writer; joined (after a final save) by stop().
  std::thread snapshot_thread_;
  util::Mutex snapshot_mutex_{"serve.server.snapshot"};
  util::CondVar snapshot_cv_;

  // Built model graphs, one per model name (graph construction + shape
  // inference is far more expensive than a map lookup).
  util::Mutex graphs_mutex_{"serve.server.graphs"};
  std::unordered_map<std::string, std::shared_ptr<const dnn::Graph>> graphs_
      JPS_GUARDED_BY(graphs_mutex_);

  // Coalescing: key -> the in-flight computation's shared future.  Size of
  // this map is the backpressure bound.
  mutable util::Mutex inflight_mutex_{"serve.server.inflight"};
  std::unordered_map<std::string, std::shared_future<PlanOutcome>> inflight_
      JPS_GUARDED_BY(inflight_mutex_);

  // Active connections, so stop() can half-close them.  Slots are nulled on
  // connection exit and reused.
  util::Mutex connections_mutex_{"serve.server.connections"};
  std::vector<ByteStream*> connections_ JPS_GUARDED_BY(connections_mutex_);

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> plans_computed_{0};
  std::atomic<std::uint64_t> coalesce_hits_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> shed_rate_limited_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> stale_served_{0};
  std::atomic<std::uint64_t> warm_start_entries_{0};
  std::atomic<std::uint64_t> snapshot_saves_{0};
  std::atomic<std::uint64_t> stats_scrapes_{0};
  std::atomic<std::uint64_t> trace_dumps_{0};
  // Last breaker_.opens() mirrored into the serve.breaker_opens counter.
  std::atomic<std::uint64_t> breaker_opens_seen_{0};
};

}  // namespace jps::serve
