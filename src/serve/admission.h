// Per-tenant admission control: one token bucket per tenant id.
//
// A fleet-facing plan server must not let one chatty device (or one buggy
// tenant integration) starve everyone else's planning budget.  The classic
// answer is a token bucket per tenant: `rate_per_sec` tokens accrue
// continuously up to a cap of `burst`, one request spends one token, and a
// request that finds the bucket empty is shed with RESOURCE_EXHAUSTED —
// cheap rejection up front instead of queueing work the pool would do late.
//
// Time is injected by the caller (milliseconds on any monotone clock), so
// tests drive the refill deterministically and the server passes a single
// steady_clock read per request.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "util/mutex.h"

namespace jps::serve {

/// Continuous-refill token bucket.  Not thread-safe on its own; the
/// per-tenant map below serializes access.
class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 disables limiting (try_acquire always succeeds).
  /// `burst` is the bucket capacity, clamped to at least 1 token.
  TokenBucket(double rate_per_sec, double burst);

  /// Spend `tokens` if available at `now_ms`; false when the bucket is
  /// empty.  `now_ms` may come from any monotone clock; going backwards is
  /// treated as no time elapsed.
  [[nodiscard]] bool try_acquire(double now_ms, double tokens = 1.0);

  /// Tokens currently available at `now_ms` (refills first).
  [[nodiscard]] double available(double now_ms);

 private:
  void refill(double now_ms);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  double last_ms_ = 0.0;
  bool started_ = false;
};

/// Lazily creates one TokenBucket per tenant id.  Thread-safe.
class TenantAdmission {
 public:
  /// `rate_per_sec` <= 0 admits everything (the single-tenant default).
  TenantAdmission(double rate_per_sec, double burst);

  /// True when `tenant` may proceed at `now_ms`.
  [[nodiscard]] bool admit(const std::string& tenant, double now_ms);

  [[nodiscard]] std::size_t tenant_count() const;

 private:
  double rate_per_sec_;
  double burst_;
  mutable util::Mutex mutex_{"serve.admission"};
  std::unordered_map<std::string, TokenBucket> buckets_ JPS_GUARDED_BY(mutex_);
};

}  // namespace jps::serve
