#include "serve/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "core/plan_io.h"
#include "util/crc32.h"
#include "util/log.h"

namespace jps::serve {

namespace {

constexpr char kSnapshotMagic[8] = {'J', 'P', 'S', 'S', 'N', 'A', 'P', '\n'};

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put_f64(std::string& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((bits >> shift) & 0xFF));
}

void put_str16(std::string& out, const std::string& s) {
  if (s.size() > 0xFFFF)
    throw std::runtime_error("snapshot: string field exceeds 65535 bytes");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out += s;
}

// Minimal bounds-checked cursor (failure = reject the whole snapshot, so a
// bool-returning style keeps decode_cache_snapshot exception-free).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& out) {
    if (!need(1)) return false;
    out = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u16(std::uint16_t& out) {
    if (!need(2)) return false;
    out = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data_[pos_]) |
        (static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_ + 1]))
         << 8));
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& out) {
    if (!need(4)) return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return true;
  }

  bool f64(double& out) {
    if (!need(8)) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
    pos_ += 8;
    out = std::bit_cast<double>(bits);
    return true;
  }

  bool str16(std::string& out) {
    std::uint16_t len = 0;
    if (!u16(len) || !need(len)) return false;
    out.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  bool bytes(std::string& out, std::size_t len) {
    if (!need(len)) return false;
    out.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  [[nodiscard]] bool need(std::size_t n) const {
    return data_.size() - pos_ >= n;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

SnapshotLoadResult reject(std::string why) {
  SnapshotLoadResult r;
  r.ok = false;
  r.error = std::move(why);
  return r;
}

}  // namespace

std::string encode_cache_snapshot(const core::ShardedPlanCache& cache) {
  auto entries = cache.plan_entries();
  // Deterministic byte stream: sort by the full key so two saves of the
  // same cache are identical (and CI can diff snapshots).
  std::sort(entries.begin(), entries.end(),
            [](const core::PlanCache::PlanEntry& a,
               const core::PlanCache::PlanEntry& b) {
              return std::tie(a.first.model, a.first.device,
                              a.first.bandwidth_mbps, a.first.strategy,
                              a.first.n_jobs) <
                     std::tie(b.first.model, b.first.device,
                              b.first.bandwidth_mbps, b.first.strategy,
                              b.first.n_jobs);
            });

  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, plan] : entries) {
    put_str16(out, key.model);
    put_str16(out, key.device);
    put_f64(out, key.bandwidth_mbps);
    put_u8(out, static_cast<std::uint8_t>(key.strategy));
    put_u32(out, static_cast<std::uint32_t>(key.n_jobs));
    const std::string text = core::serialize_plan(*plan);
    put_u32(out, static_cast<std::uint32_t>(text.size()));
    out += text;
  }
  put_u32(out, util::crc32(out));
  return out;
}

SnapshotLoadResult decode_cache_snapshot(const std::string& bytes,
                                         core::ShardedPlanCache& cache) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 12)
    return reject("snapshot shorter than header + trailer");
  if (bytes.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                    sizeof(kSnapshotMagic)) != 0)
    return reject("bad snapshot magic");

  // CRC gate first: a single flipped or missing byte anywhere rejects the
  // file before any entry is trusted.
  const std::string_view body(bytes.data(), bytes.size() - 4);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i)
    stored |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(bytes[bytes.size() - 4 +
                                                  static_cast<std::size_t>(i)]))
              << (8 * i);
  const std::uint32_t actual = util::crc32(body);
  if (stored != actual)
    return reject("snapshot CRC mismatch (stored " + std::to_string(stored) +
                  ", computed " + std::to_string(actual) + ")");

  Cursor cursor(body.substr(sizeof(kSnapshotMagic)));
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  if (!cursor.u32(version)) return reject("truncated snapshot version");
  if (version != kSnapshotVersion)
    return reject("unsupported snapshot version " + std::to_string(version));
  if (!cursor.u32(count)) return reject("truncated snapshot entry count");

  // Decode everything into a staging list; only a fully-valid snapshot
  // touches the cache.
  std::vector<core::PlanCache::PlanEntry> staged;
  staged.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string model;
    std::string device;
    double bandwidth = 0.0;
    std::uint8_t strategy = 0;
    std::uint32_t n_jobs = 0;
    std::uint32_t plan_len = 0;
    std::string plan_text;
    if (!cursor.str16(model) || !cursor.str16(device) ||
        !cursor.f64(bandwidth) || !cursor.u8(strategy) ||
        !cursor.u32(n_jobs) || !cursor.u32(plan_len) ||
        !cursor.bytes(plan_text, plan_len))
      return reject("truncated snapshot entry " + std::to_string(i));
    if (strategy > static_cast<std::uint8_t>(core::Strategy::kRobust))
      return reject("snapshot entry " + std::to_string(i) +
                    " has unknown strategy code " + std::to_string(strategy));
    try {
      // deserialize_plan lints on parse; a key whose bandwidth is
      // non-finite is rejected by PlanCacheKey's own contract check, so
      // wrap both in the same guard.
      core::PlanCacheKey key(model, device, bandwidth,
                             static_cast<core::Strategy>(strategy),
                             static_cast<int>(n_jobs));
      auto plan = std::make_shared<const core::ExecutionPlan>(
          core::deserialize_plan(plan_text));
      staged.emplace_back(std::move(key), std::move(plan));
    } catch (const std::exception& e) {
      return reject("snapshot entry " + std::to_string(i) +
                    " rejected: " + e.what());
    }
  }
  if (!cursor.done()) return reject("trailing bytes after snapshot entries");

  for (auto& [key, plan] : staged) cache.insert_plan(key, std::move(plan));
  SnapshotLoadResult r;
  r.entries = staged.size();
  return r;
}

void save_cache_snapshot(const core::ShardedPlanCache& cache,
                         const std::string& path) {
  const std::string bytes = encode_cache_snapshot(cache);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("snapshot: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("snapshot: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: rename " + tmp + " -> " + path +
                             " failed");
  }
}

SnapshotLoadResult load_cache_snapshot(core::ShardedPlanCache& cache,
                                       const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no snapshot: a normal cold start
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SnapshotLoadResult result = decode_cache_snapshot(buffer.str(), cache);
  if (!result.ok) {
    // Corrupt snapshots cost warmth, never availability: log and move on.
    util::log_line(util::LogLevel::kWarn,
                   "ignoring corrupt plan-cache snapshot",
                   {{"path", path}, {"reason", result.error}});
  }
  return result;
}

}  // namespace jps::serve
