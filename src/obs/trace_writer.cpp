#include "obs/trace_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace jps::obs {

namespace {

// Timestamps: the trace format's "ts"/"dur" are microseconds.
void append_us(std::ostringstream& os, double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms * 1000.0);
  os << buffer;
}

void append_args(std::ostringstream& os,
                 const std::vector<std::pair<std::string, std::string>>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(args[i].first) << "\":\""
       << json_escape(args[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceWriter::set_process_name(int pid, const std::string& name) {
  process_names_.emplace_back(pid, name);
}

void TraceWriter::set_thread_name(int pid, std::uint64_t tid,
                                  const std::string& name) {
  thread_names_.emplace_back(std::make_pair(pid, tid), name);
}

void TraceWriter::add_event(Event event) {
  events_.push_back(std::move(event));
}

void TraceWriter::add_spans(const std::vector<SpanRecord>& spans, int pid) {
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) {
    Event event;
    event.name = span.name;
    event.category = span.category;
    event.pid = pid;
    event.tid = span.thread;
    event.start_ms = span.start_ms;
    event.dur_ms = span.dur_ms;
    event.args = span.args;
    if (span.trace_hi != 0 || span.trace_lo != 0) {
      event.args.emplace_back("trace_id",
                              trace_id_hex(span.trace_hi, span.trace_lo));
      if (span.span_id != 0) by_id.emplace(span.span_id, &span);
    }
    events_.push_back(std::move(event));
  }
  // Flow arrows for cross-thread parent->child handoffs within this batch.
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id == 0) continue;
    const auto it = by_id.find(span.parent_span_id);
    if (it == by_id.end()) continue;
    const SpanRecord& parent = *it->second;
    if (parent.thread == span.thread) continue;  // same track: nesting shows it
    // "s" on the parent's track, "f" on the child's, both at the handoff
    // instant (the child's start); Chrome requires s.ts <= f.ts.
    flows_.push_back(
        {span.span_id, span.name, pid, parent.thread, span.start_ms, true});
    flows_.push_back(
        {span.span_id, span.name, pid, span.thread, span.start_ms, false});
  }
}

void TraceWriter::add_counter_snapshot(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    int pid) {
  if (counters.empty()) return;
  Event event;
  event.name = "counters";
  event.category = "obs";
  event.pid = pid;
  for (const auto& [name, value] : counters)
    event.args.emplace_back(name, std::to_string(value));
  events_.push_back(std::move(event));
}

std::string TraceWriter::json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    separator();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    separator();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
  }
  for (const Event& event : events_) {
    separator();
    os << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
       << json_escape(event.category) << "\",\"ph\":\"X\",\"ts\":";
    append_us(os, event.start_ms);
    os << ",\"dur\":";
    append_us(os, event.dur_ms);
    os << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid << ",\"args\":";
    append_args(os, event.args);
    os << "}";
  }
  for (const FlowPoint& flow : flows_) {
    separator();
    os << "{\"name\":\"" << json_escape(flow.name)
       << "\",\"cat\":\"flow\",\"ph\":\"" << (flow.start ? 's' : 'f') << "\"";
    if (!flow.start) os << ",\"bp\":\"e\"";
    os << ",\"id\":" << flow.id << ",\"ts\":";
    append_us(os, flow.ts_ms);
    os << ",\"pid\":" << flow.pid << ",\"tid\":" << flow.tid << "}";
  }
  os << "]}\n";
  return os.str();
}

void TraceWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceWriter: cannot open " + path);
  out << json();
  if (!out) throw std::runtime_error("TraceWriter: write failed for " + path);
}

}  // namespace jps::obs
