#include "obs/flight_recorder.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/strings.h"

namespace jps::obs {

namespace {

using TraceKey = std::pair<std::uint64_t, std::uint64_t>;

struct TraceKeyHash {
  std::size_t operator()(const TraceKey& key) const {
    // The ids are already splitmix64-mixed; xor keeps full entropy.
    return static_cast<std::size_t>(key.first ^ (key.second * 0x9e3779b9ULL));
  }
};

struct ActiveTrace {
  std::vector<SpanRecord> spans;
  std::uint64_t dropped = 0;
  std::uint64_t last_touch = 0;  ///< logical clock for stale eviction
};

}  // namespace

struct FlightRecorder::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> sample_every{kDefaultSampleEvery};
  std::atomic<std::uint64_t> sample_clock{0};

  mutable util::Mutex active_mutex{"obs.flightrec.active"};
  std::unordered_map<TraceKey, ActiveTrace, TraceKeyHash> active
      JPS_GUARDED_BY(active_mutex);
  std::size_t max_spans JPS_GUARDED_BY(active_mutex) = kDefaultMaxSpansPerTrace;
  std::uint64_t touch_clock JPS_GUARDED_BY(active_mutex) = 0;

  mutable util::Mutex ring_mutex{"obs.flightrec.ring"};
  std::deque<TraceRecord> ring JPS_GUARDED_BY(ring_mutex);
  std::size_t capacity JPS_GUARDED_BY(ring_mutex) = kDefaultCapacity;
  Histogram latency JPS_GUARDED_BY(ring_mutex){"flightrec.latency"};
  std::uint64_t finishes JPS_GUARDED_BY(ring_mutex) = 0;
  // Cached rolling p99 so retention is O(1); +inf until the first refresh
  // so early traffic is retained by sampling/error only.
  std::atomic<double> p99_ms{std::numeric_limits<double>::infinity()};

  mutable util::Mutex exemplar_mutex{"obs.flightrec.exemplars"};
  std::map<std::pair<std::string, std::size_t>, Exemplar> exemplars_by_bucket
      JPS_GUARDED_BY(exemplar_mutex);
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

// Like the Registry: static storage, never destroyed, so spans finishing
// during process teardown can still report.
FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

void FlightRecorder::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  util::MutexLock lock(impl_->ring_mutex);
  impl_->capacity = std::max<std::size_t>(1, capacity);
  while (impl_->ring.size() > impl_->capacity) impl_->ring.pop_front();
}

void FlightRecorder::set_sample_every(std::uint64_t n) {
  impl_->sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

void FlightRecorder::set_max_spans_per_trace(std::size_t n) {
  util::MutexLock lock(impl_->active_mutex);
  impl_->max_spans = std::max<std::size_t>(1, n);
}

void FlightRecorder::record_span(const SpanRecord& record) {
  if (!enabled()) return;
  const TraceKey key{record.trace_hi, record.trace_lo};
  util::MutexLock lock(impl_->active_mutex);
  auto it = impl_->active.find(key);
  if (it == impl_->active.end()) {
    if (impl_->active.size() >= kMaxActiveTraces) {
      // A leaked trace (started, never finished) must not pin memory:
      // discard the one untouched the longest.
      auto stalest = impl_->active.begin();
      for (auto cand = impl_->active.begin(); cand != impl_->active.end();
           ++cand) {
        if (cand->second.last_touch < stalest->second.last_touch)
          stalest = cand;
      }
      impl_->active.erase(stalest);
      static Counter& leaked = counter("obs.flightrec.active_evicted");
      leaked.add();
    }
    it = impl_->active.emplace(key, ActiveTrace{}).first;
  }
  ActiveTrace& trace = it->second;
  trace.last_touch = ++impl_->touch_clock;
  if (trace.spans.size() >= impl_->max_spans) {
    ++trace.dropped;
    static Counter& dropped = counter("obs.flightrec.span_drops");
    dropped.add();
    return;
  }
  trace.spans.push_back(record);
}

void FlightRecorder::finish(const TraceContext& context,
                            const std::string& status, bool error,
                            double start_ms, double dur_ms) {
  static Counter& finished = counter("obs.flightrec.finished");
  static Counter& retained = counter("obs.flightrec.retained");
  static Counter& sampled_out = counter("obs.flightrec.sampled_out");
  static Counter& evicted = counter("obs.flightrec.evicted");
  if (!enabled() || !context.valid()) return;
  finished.add();

  TraceRecord record;
  record.trace_hi = context.trace_hi;
  record.trace_lo = context.trace_lo;
  record.status = status;
  record.error = error;
  record.start_ms = start_ms;
  record.dur_ms = dur_ms;
  {
    util::MutexLock lock(impl_->active_mutex);
    auto it = impl_->active.find({context.trace_hi, context.trace_lo});
    if (it != impl_->active.end()) {
      record.spans = std::move(it->second.spans);
      record.spans_dropped = it->second.dropped;
      impl_->active.erase(it);
    }
  }

  // Tail-based retention: errors and latency outliers always, the rest
  // head-sampled 1-in-N so the ring keeps representative fast requests.
  bool keep = error;
  if (!keep && dur_ms >= impl_->p99_ms.load(std::memory_order_relaxed))
    keep = true;
  if (!keep) {
    const std::uint64_t every =
        impl_->sample_every.load(std::memory_order_relaxed);
    const std::uint64_t tick =
        impl_->sample_clock.fetch_add(1, std::memory_order_relaxed);
    keep = every <= 1 || tick % every == 0;
  }

  util::MutexLock lock(impl_->ring_mutex);
  impl_->latency.record(dur_ms);
  if (++impl_->finishes % kP99RefreshEvery == 0) {
    impl_->p99_ms.store(impl_->latency.percentile(99),
                        std::memory_order_relaxed);
  }
  if (!keep) {
    sampled_out.add();
    return;
  }
  retained.add();
  impl_->ring.push_back(std::move(record));
  while (impl_->ring.size() > impl_->capacity) {
    impl_->ring.pop_front();
    evicted.add();
  }
}

void FlightRecorder::record_exemplar(const std::string& histogram_name,
                                     double value,
                                     const TraceContext& context) {
  if (!enabled() || !context.valid()) return;
  Exemplar exemplar;
  exemplar.histogram = histogram_name;
  exemplar.bucket = Histogram::bucket_index(value);
  exemplar.value = value;
  exemplar.trace_hi = context.trace_hi;
  exemplar.trace_lo = context.trace_lo;
  util::MutexLock lock(impl_->exemplar_mutex);
  impl_->exemplars_by_bucket[{histogram_name, exemplar.bucket}] =
      std::move(exemplar);
}

std::vector<Exemplar> FlightRecorder::exemplars() const {
  util::MutexLock lock(impl_->exemplar_mutex);
  std::vector<Exemplar> out;
  out.reserve(impl_->exemplars_by_bucket.size());
  for (const auto& [key, exemplar] : impl_->exemplars_by_bucket)
    out.push_back(exemplar);
  return out;  // std::map iteration: sorted by (histogram, bucket)
}

std::vector<TraceRecord> FlightRecorder::drain(std::size_t max) {
  util::MutexLock lock(impl_->ring_mutex);
  const std::size_t n =
      max == 0 ? impl_->ring.size() : std::min(max, impl_->ring.size());
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(impl_->ring.front()));
    impl_->ring.pop_front();
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  util::MutexLock lock(impl_->ring_mutex);
  return impl_->ring.size();
}

double FlightRecorder::latency_p99_ms() const {
  return impl_->p99_ms.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  {
    util::MutexLock lock(impl_->active_mutex);
    impl_->active.clear();
    impl_->max_spans = kDefaultMaxSpansPerTrace;
    impl_->touch_clock = 0;
  }
  {
    util::MutexLock lock(impl_->ring_mutex);
    impl_->ring.clear();
    impl_->capacity = kDefaultCapacity;
    impl_->latency.reset();
    impl_->finishes = 0;
    impl_->p99_ms.store(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
  }
  {
    util::MutexLock lock(impl_->exemplar_mutex);
    impl_->exemplars_by_bucket.clear();
  }
  impl_->sample_every.store(kDefaultSampleEvery, std::memory_order_relaxed);
  impl_->sample_clock.store(0, std::memory_order_relaxed);
}

std::string flight_records_json(const std::vector<TraceRecord>& records) {
  util::Json traces = util::Json::array();
  for (const TraceRecord& record : records) {
    util::Json spans = util::Json::array();
    for (const SpanRecord& span : record.spans) {
      util::Json args = util::Json::object();
      for (const auto& [key, value] : span.args) args.set(key, value);
      util::Json entry = util::Json::object();
      entry.set("name", span.name);
      entry.set("category", span.category);
      entry.set("span_id", span_id_hex(span.span_id));
      entry.set("parent_span_id", span_id_hex(span.parent_span_id));
      entry.set("thread", static_cast<double>(span.thread));
      entry.set("start_ms", span.start_ms);
      entry.set("dur_ms", span.dur_ms);
      entry.set("args", std::move(args));
      spans.push_back(std::move(entry));
    }
    util::Json trace = util::Json::object();
    trace.set("trace_id", trace_id_hex(record.trace_hi, record.trace_lo));
    trace.set("status", record.status);
    trace.set("error", record.error);
    trace.set("start_ms", record.start_ms);
    trace.set("dur_ms", record.dur_ms);
    trace.set("spans_dropped", static_cast<double>(record.spans_dropped));
    trace.set("spans", std::move(spans));
    traces.push_back(std::move(trace));
  }
  util::Json root = util::Json::object();
  root.set("traces", std::move(traces));
  // Names for the registry-labeled threads the spans reference, so a
  // remote consumer (jps_serve trace --chrome-out) can label its tracks.
  std::set<std::uint64_t> referenced;
  for (const TraceRecord& record : records)
    for (const SpanRecord& span : record.spans) referenced.insert(span.thread);
  util::Json names = util::Json::object();
  for (const auto& [index, name] : Registry::global().thread_names())
    if (referenced.count(index) != 0)
      names.set(std::to_string(index), name);
  root.set("thread_names", std::move(names));
  return root.dump();
}

std::vector<std::pair<std::uint64_t, std::string>>
flight_thread_names_from_json(const util::Json& json) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!json.is_object() || !json.contains("thread_names")) return out;
  const util::Json& names = json.at("thread_names");
  if (!names.is_object()) return out;
  for (const auto& [key, value] : names.members()) {
    if (!value.is_string()) continue;
    const std::optional<std::int64_t> index = util::parse_int(key);
    if (!index.has_value() || *index < 0) continue;  // not an index — skip
    out.emplace_back(static_cast<std::uint64_t>(*index), value.as_string());
  }
  return out;
}

std::vector<TraceRecord> flight_records_from_json(const util::Json& json) {
  if (!json.is_object() || !json.contains("traces"))
    throw std::runtime_error("trace dump: missing \"traces\" array");
  const util::Json& traces = json.at("traces");
  if (!traces.is_array())
    throw std::runtime_error("trace dump: \"traces\" is not an array");
  std::vector<TraceRecord> out;
  out.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const util::Json& trace = traces.at(i);
    TraceRecord record;
    const std::string& id = trace.at("trace_id").as_string();
    if (id.size() != 32)
      throw std::runtime_error("trace dump: trace_id is not 32 hex chars");
    record.trace_hi = parse_hex_u64(id.substr(0, 16));
    record.trace_lo = parse_hex_u64(id.substr(16));
    record.status = trace.at("status").as_string();
    record.error = trace.at("error").as_bool();
    record.start_ms = trace.at("start_ms").as_double();
    record.dur_ms = trace.at("dur_ms").as_double();
    record.spans_dropped =
        static_cast<std::uint64_t>(trace.at("spans_dropped").as_double());
    const util::Json& spans = trace.at("spans");
    for (std::size_t s = 0; s < spans.size(); ++s) {
      const util::Json& entry = spans.at(s);
      SpanRecord span;
      span.name = entry.at("name").as_string();
      span.category = entry.at("category").as_string();
      span.span_id = parse_hex_u64(entry.at("span_id").as_string());
      span.parent_span_id =
          parse_hex_u64(entry.at("parent_span_id").as_string());
      span.thread = static_cast<std::uint64_t>(entry.at("thread").as_double());
      span.start_ms = entry.at("start_ms").as_double();
      span.dur_ms = entry.at("dur_ms").as_double();
      span.trace_hi = record.trace_hi;
      span.trace_lo = record.trace_lo;
      for (const auto& [key, value] : entry.at("args").members())
        span.args.emplace_back(key, value.as_string());
      record.spans.push_back(std::move(span));
    }
    out.push_back(std::move(record));
  }
  return out;
}

std::string validate_trace(const TraceRecord& record, double slack_ms) {
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : record.spans) {
    if (span.span_id == 0) return "span with zero span_id";
    if (!by_id.emplace(span.span_id, &span).second)
      return "duplicate span_id " + span_id_hex(span.span_id);
  }
  std::size_t roots = 0;
  for (const SpanRecord& span : record.spans) {
    const auto parent_it = by_id.find(span.parent_span_id);
    if (span.parent_span_id == 0 || parent_it == by_id.end()) {
      // Root, or a child of an external (cross-process) parent.
      ++roots;
      continue;
    }
    const SpanRecord& parent = *parent_it->second;
    if (span.start_ms + slack_ms < parent.start_ms ||
        span.start_ms + span.dur_ms >
            parent.start_ms + parent.dur_ms + slack_ms) {
      return "span " + span.name + " [" + std::to_string(span.start_ms) +
             ", +" + std::to_string(span.dur_ms) +
             "ms] not nested in parent " + parent.name;
    }
    // Walk the parent chain; > spans.size() hops means a cycle.
    std::size_t hops = 0;
    std::uint64_t cursor = span.parent_span_id;
    while (cursor != 0) {
      const auto it = by_id.find(cursor);
      if (it == by_id.end()) break;
      if (++hops > record.spans.size())
        return "parent cycle through span " + span.name;
      cursor = it->second->parent_span_id;
    }
  }
  if (!record.spans.empty() && roots == 0) return "no root span";
  return {};
}

}  // namespace jps::obs
