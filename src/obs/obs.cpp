#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace jps::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("JPS_TRACE");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
  }();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  Clock::time_point epoch = Clock::now();

  mutable std::mutex span_mutex;
  std::vector<SpanRecord> spans;

  mutable std::mutex counter_mutex;
  // Node-based map: Counter& handles stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters;

  mutable std::mutex thread_mutex;
  std::unordered_map<std::thread::id, std::uint64_t> thread_ids;
};

Registry::Registry() : impl_(new Impl) {}

// The singleton is never destroyed (static storage, intentionally leaked
// Impl) so worker threads may record during process teardown.
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry;
  return *registry;
}

void Registry::record(SpanRecord record) {
  std::lock_guard lock(impl_->span_mutex);
  impl_->spans.push_back(std::move(record));
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard lock(impl_->span_mutex);
  return impl_->spans;
}

std::size_t Registry::span_count() const {
  std::lock_guard lock(impl_->span_mutex);
  return impl_->spans.size();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->counter_mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard lock(impl_->counter_mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters)
    out.emplace_back(name, counter->value());
  return out;  // std::map iteration is already name-sorted
}

double Registry::now_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
      .count();
}

std::uint64_t Registry::thread_index() {
  const std::thread::id id = std::this_thread::get_id();
  std::lock_guard lock(impl_->thread_mutex);
  const auto [it, inserted] =
      impl_->thread_ids.emplace(id, impl_->thread_ids.size());
  return it->second;
}

void Registry::clear_spans() {
  std::lock_guard lock(impl_->span_mutex);
  impl_->spans.clear();
}

void Registry::reset() {
  clear_spans();
  std::lock_guard lock(impl_->counter_mutex);
  for (auto& [name, counter] : impl_->counters) counter->reset();
}

Span::Span(std::string name, std::string category) {
  if (!enabled()) return;
  active_ = true;
  record_.name = std::move(name);
  record_.category = std::move(category);
  start_ms_ = Registry::global().now_ms();
}

Span::~Span() {
  if (!active_) return;
  Registry& registry = Registry::global();
  record_.start_ms = start_ms_;
  record_.dur_ms = registry.now_ms() - start_ms_;
  record_.thread = registry.thread_index();
  registry.record(std::move(record_));
}

void Span::arg(std::string key, std::string value) {
  if (!active_) return;
  record_.args.emplace_back(std::move(key), std::move(value));
}

void Span::arg(std::string key, double value) {
  if (!active_) return;
  std::string text = std::to_string(value);
  record_.args.emplace_back(std::move(key), std::move(text));
}

}  // namespace jps::obs
