#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"

namespace jps::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("JPS_TRACE");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
  }();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  Clock::time_point epoch = Clock::now();

  mutable std::mutex span_mutex;
  std::vector<SpanRecord> spans;
  std::size_t span_capacity = kDefaultSpanCapacity;
  std::atomic<std::uint64_t> spans_dropped{0};

  mutable std::mutex counter_mutex;
  // Node-based maps: Counter&/Gauge&/Histogram& handles stay valid across
  // inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters;

  mutable std::mutex gauge_mutex;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;

  mutable std::mutex histogram_mutex;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  mutable std::mutex thread_mutex;
  std::unordered_map<std::thread::id, std::uint64_t> thread_ids;
};

Registry::Registry() : impl_(new Impl) {}

// The singleton is never destroyed (static storage, intentionally leaked
// Impl) so worker threads may record during process teardown.
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry;
  return *registry;
}

void Registry::record(SpanRecord record) {
  static Counter& dropped = counter("obs.spans_dropped");
  std::lock_guard lock(impl_->span_mutex);
  if (impl_->spans.size() >= impl_->span_capacity) {
    impl_->spans_dropped.fetch_add(1, std::memory_order_relaxed);
    dropped.add();
    return;
  }
  impl_->spans.push_back(std::move(record));
}

void Registry::set_span_capacity(std::size_t capacity) {
  std::lock_guard lock(impl_->span_mutex);
  impl_->span_capacity = capacity;
}

std::size_t Registry::span_capacity() const {
  std::lock_guard lock(impl_->span_mutex);
  return impl_->span_capacity;
}

std::uint64_t Registry::spans_dropped() const {
  return impl_->spans_dropped.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard lock(impl_->span_mutex);
  return impl_->spans;
}

std::size_t Registry::span_count() const {
  std::lock_guard lock(impl_->span_mutex);
  return impl_->spans.size();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(impl_->counter_mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard lock(impl_->counter_mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters)
    out.emplace_back(name, counter->value());
  return out;  // std::map iteration is already name-sorted
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(impl_->gauge_mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(impl_->histogram_mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms.emplace(name, std::make_unique<Histogram>(name))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard lock(impl_->gauge_mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges)
    out.emplace_back(name, gauge->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  std::lock_guard lock(impl_->histogram_mutex);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms)
    out.emplace_back(name, histogram->snapshot());
  return out;
}

double Registry::now_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
      .count();
}

std::uint64_t Registry::thread_index() {
  const std::thread::id id = std::this_thread::get_id();
  std::lock_guard lock(impl_->thread_mutex);
  const auto [it, inserted] =
      impl_->thread_ids.emplace(id, impl_->thread_ids.size());
  return it->second;
}

void Registry::clear_spans() {
  std::lock_guard lock(impl_->span_mutex);
  impl_->spans.clear();
}

void Registry::reset() {
  {
    std::lock_guard lock(impl_->span_mutex);
    impl_->spans.clear();
    impl_->span_capacity = kDefaultSpanCapacity;
    impl_->spans_dropped.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(impl_->counter_mutex);
    for (auto& [name, counter] : impl_->counters) counter->reset();
  }
  {
    std::lock_guard lock(impl_->gauge_mutex);
    for (auto& [name, gauge] : impl_->gauges) gauge->reset();
  }
  std::lock_guard lock(impl_->histogram_mutex);
  for (auto& [name, histogram] : impl_->histograms) histogram->reset();
}

Span::Span(std::string name, std::string category) {
  if (!enabled()) return;
  active_ = true;
  record_.name = std::move(name);
  record_.category = std::move(category);
  start_ms_ = Registry::global().now_ms();
}

Span::~Span() {
  if (!active_) return;
  Registry& registry = Registry::global();
  record_.start_ms = start_ms_;
  record_.dur_ms = registry.now_ms() - start_ms_;
  record_.thread = registry.thread_index();
  registry.record(std::move(record_));
}

void Span::arg(std::string key, std::string value) {
  if (!active_) return;
  record_.args.emplace_back(std::move(key), std::move(value));
}

void Span::arg(std::string key, double value) {
  if (!active_) return;
  std::string text = std::to_string(value);
  record_.args.emplace_back(std::move(key), std::move(text));
}

Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace jps::obs
