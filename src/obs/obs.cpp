#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/mutex.h"

namespace jps::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("JPS_TRACE");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
  }();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  Clock::time_point epoch = Clock::now();

  mutable util::Mutex span_mutex{"obs.spans"};
  std::vector<SpanRecord> spans JPS_GUARDED_BY(span_mutex);
  std::size_t span_capacity JPS_GUARDED_BY(span_mutex) = kDefaultSpanCapacity;
  std::atomic<std::uint64_t> spans_dropped{0};

  mutable util::Mutex counter_mutex{"obs.counters"};
  // Node-based maps: Counter&/Gauge&/Histogram& handles stay valid across
  // inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters
      JPS_GUARDED_BY(counter_mutex);

  mutable util::Mutex gauge_mutex{"obs.gauges"};
  std::map<std::string, std::unique_ptr<Gauge>> gauges
      JPS_GUARDED_BY(gauge_mutex);

  mutable util::Mutex histogram_mutex{"obs.histograms"};
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      JPS_GUARDED_BY(histogram_mutex);

  mutable util::Mutex thread_mutex{"obs.threads"};
  std::unordered_map<std::thread::id, std::uint64_t> thread_ids
      JPS_GUARDED_BY(thread_mutex);
  std::unordered_map<std::uint64_t, std::string> thread_names
      JPS_GUARDED_BY(thread_mutex);
};

Registry::Registry() : impl_(new Impl) {}

// The singleton is never destroyed (static storage, intentionally leaked
// Impl) so worker threads may record during process teardown.
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry;
  return *registry;
}

void Registry::record(SpanRecord record) {
  static Counter& dropped = counter("obs.spans_dropped");
  util::MutexLock lock(impl_->span_mutex);
  if (impl_->spans.size() >= impl_->span_capacity) {
    impl_->spans_dropped.fetch_add(1, std::memory_order_relaxed);
    dropped.add();
    return;
  }
  impl_->spans.push_back(std::move(record));
}

void Registry::set_span_capacity(std::size_t capacity) {
  util::MutexLock lock(impl_->span_mutex);
  impl_->span_capacity = capacity;
}

std::size_t Registry::span_capacity() const {
  util::MutexLock lock(impl_->span_mutex);
  return impl_->span_capacity;
}

std::uint64_t Registry::spans_dropped() const {
  return impl_->spans_dropped.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Registry::spans() const {
  util::MutexLock lock(impl_->span_mutex);
  return impl_->spans;
}

std::size_t Registry::span_count() const {
  util::MutexLock lock(impl_->span_mutex);
  return impl_->spans.size();
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(impl_->counter_mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  util::MutexLock lock(impl_->counter_mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters)
    out.emplace_back(name, counter->value());
  return out;  // std::map iteration is already name-sorted
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(impl_->gauge_mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  util::MutexLock lock(impl_->histogram_mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms.emplace(name, std::make_unique<Histogram>(name))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  util::MutexLock lock(impl_->gauge_mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges)
    out.emplace_back(name, gauge->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  util::MutexLock lock(impl_->histogram_mutex);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms)
    out.emplace_back(name, histogram->snapshot());
  return out;
}

double Registry::now_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
      .count();
}

std::uint64_t Registry::thread_index() {
  const std::thread::id id = std::this_thread::get_id();
  util::MutexLock lock(impl_->thread_mutex);
  const auto [it, inserted] =
      impl_->thread_ids.emplace(id, impl_->thread_ids.size());
  return it->second;
}

void Registry::set_thread_name(const std::string& name) {
  const std::thread::id id = std::this_thread::get_id();
  util::MutexLock lock(impl_->thread_mutex);
  const auto [it, inserted] =
      impl_->thread_ids.emplace(id, impl_->thread_ids.size());
  impl_->thread_names[it->second] = name;
}

std::vector<std::pair<std::uint64_t, std::string>> Registry::thread_names()
    const {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  {
    util::MutexLock lock(impl_->thread_mutex);
    out.assign(impl_->thread_names.begin(), impl_->thread_names.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Registry::clear_spans() {
  util::MutexLock lock(impl_->span_mutex);
  impl_->spans.clear();
}

void Registry::reset() {
  {
    util::MutexLock lock(impl_->span_mutex);
    impl_->spans.clear();
    impl_->span_capacity = kDefaultSpanCapacity;
    impl_->spans_dropped.store(0, std::memory_order_relaxed);
  }
  {
    util::MutexLock lock(impl_->counter_mutex);
    for (auto& [name, counter] : impl_->counters) counter->reset();
  }
  {
    util::MutexLock lock(impl_->gauge_mutex);
    for (auto& [name, gauge] : impl_->gauges) gauge->reset();
  }
  util::MutexLock lock(impl_->histogram_mutex);
  for (auto& [name, histogram] : impl_->histograms) histogram->reset();
}

Span::Span(std::string name, std::string category) {
  const TraceContext context = TraceContext::current();
  const bool traced =
      context.valid() && FlightRecorder::global().enabled();
  if (!enabled() && !traced) return;
  active_ = true;
  record_.name = std::move(name);
  record_.category = std::move(category);
  if (context.valid()) {
    // Stamp trace identity and become the current context so spans opened
    // inside this one (same thread, or via ThreadPool propagation) parent
    // onto us.
    record_.trace_hi = context.trace_hi;
    record_.trace_lo = context.trace_lo;
    record_.parent_span_id = context.span_id;
    record_.span_id = TraceContext::next_span_id();
    previous_ = context;
    TraceContext child = context;
    child.span_id = record_.span_id;
    TraceContext::set_current(child);
    installed_ = true;
  }
  start_ms_ = Registry::global().now_ms();
}

Span::~Span() {
  if (!active_) return;
  if (installed_) TraceContext::set_current(previous_);
  Registry& registry = Registry::global();
  record_.start_ms = start_ms_;
  record_.dur_ms = registry.now_ms() - start_ms_;
  record_.thread = registry.thread_index();
  if (record_.trace_hi != 0 || record_.trace_lo != 0)
    FlightRecorder::global().record_span(record_);
  if (enabled()) registry.record(std::move(record_));
}

void Span::arg(std::string key, std::string value) {
  if (!active_) return;
  record_.args.emplace_back(std::move(key), std::move(value));
}

void Span::arg(std::string key, double value) {
  if (!active_) return;
  std::string text = std::to_string(value);
  record_.args.emplace_back(std::move(key), std::move(text));
}

Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}

}  // namespace jps::obs
