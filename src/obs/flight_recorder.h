// Flight recorder: a bounded ring of recently completed request traces.
//
// Always-on span recording for every request would cost unbounded memory
// and produce mostly uninteresting data.  The recorder instead applies
// tail-based retention at the moment a request *finishes*, when its outcome
// and duration are known:
//
//   * error tails are always kept (shed, deadline-exceeded, invalid, any
//     non-OK status),
//   * latency tails are always kept (duration >= the rolling p99 of all
//     finished requests, tracked in an internal histogram and refreshed
//     every kP99RefreshEvery finishes),
//   * everything else is head-sampled 1-in-sample_every so the ring always
//     holds some representative fast requests too.
//
// Retained traces sit in a fixed-capacity ring (oldest evicted first) until
// a TRACE_DUMP drains them.  The recorder also keeps histogram *exemplars*:
// for each (histogram, bucket) it remembers the most recent traced
// observation, so a p99 bucket in `serve.plan_ms` links directly to a trace
// id that landed there.
//
// Spans reach the recorder from ~Span: when the destructing span carries a
// valid TraceContext and the recorder is enabled, the record is appended to
// the trace's in-flight span list (keyed by trace id) regardless of the
// global obs::enabled() flag — request tracing works without JPS_TRACE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_context.h"

namespace jps::util {
class Json;
}  // namespace jps::util

namespace jps::obs {

/// One completed, retained request trace.
struct TraceRecord {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::string status;        ///< e.g. "OK", "SHED_QUEUE", "DEADLINE_EXCEEDED"
  bool error = false;        ///< retention reason: non-OK outcome
  double start_ms = 0.0;     ///< registry clock, ms since trace epoch
  double dur_ms = 0.0;       ///< root wall time as reported by finish()
  std::uint64_t spans_dropped = 0;  ///< spans over the per-trace cap
  std::vector<SpanRecord> spans;    ///< completion order
};

/// A (histogram bucket -> trace id) link: the most recent traced
/// observation that landed in `bucket` of histogram `histogram`.
struct Exemplar {
  std::string histogram;
  std::size_t bucket = 0;
  double value = 0.0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
};

/// Process-wide recorder.  All methods are thread-safe.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;
  static constexpr std::size_t kDefaultMaxSpansPerTrace = 64;
  static constexpr std::uint64_t kDefaultSampleEvery = 8;
  /// In-flight (started, not finished) traces tracked at once; beyond this
  /// the stalest trace's spans are discarded to bound memory under leaks.
  static constexpr std::size_t kMaxActiveTraces = 1024;
  /// finish() calls between rolling-p99 refreshes.
  static constexpr std::uint64_t kP99RefreshEvery = 32;

  [[nodiscard]] static FlightRecorder& global();

  /// Recording gate.  Off by default; serve::Server turns it on.  When off,
  /// record_span/finish are cheap no-ops.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Ring capacity (completed retained traces).  Takes effect immediately;
  /// shrinking evicts oldest.
  void set_capacity(std::size_t capacity);
  /// Head-sampling rate for unremarkable requests (1-in-N kept; 0 or 1
  /// keeps everything).
  void set_sample_every(std::uint64_t n);
  /// Per-trace span cap; further spans count into TraceRecord::spans_dropped.
  void set_max_spans_per_trace(std::size_t n);

  /// Append one finished span to its trace's in-flight list (called from
  /// ~Span when the span carries a valid trace context).
  void record_span(const SpanRecord& record);

  /// Complete the trace named by `context`: apply tail-based retention and
  /// either push a TraceRecord into the ring or discard.  `status` is the
  /// request outcome label; `error` forces retention.
  void finish(const TraceContext& context, const std::string& status,
              bool error, double start_ms, double dur_ms);

  /// Remember `value` (observed in histogram `histogram_name`) as the
  /// exemplar for its bucket, linked to `context`'s trace id.
  void record_exemplar(const std::string& histogram_name, double value,
                       const TraceContext& context);

  /// Snapshot of all current exemplars, sorted by (histogram, bucket).
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

  /// Remove and return up to `max` oldest retained traces (0 = all).
  [[nodiscard]] std::vector<TraceRecord> drain(std::size_t max = 0);

  /// Retained (not yet drained) trace count.
  [[nodiscard]] std::size_t size() const;

  /// Rolling p99 threshold currently applied by retention (ms).
  [[nodiscard]] double latency_p99_ms() const;

  /// Drop all state and restore defaults (test isolation).  Leaves the
  /// enabled flag untouched.
  void reset();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder();
  ~FlightRecorder();
  struct Impl;
  Impl* impl_;
};

/// JSON rendering of drained traces:
///   {"traces":[{"trace_id":"<32 hex>","status":...,"error":...,
///               "start_ms":...,"dur_ms":...,"spans_dropped":...,
///               "spans":[{"name":...,"category":...,"span_id":"<16 hex>",
///                         "parent_span_id":"<16 hex>","thread":...,
///                         "start_ms":...,"dur_ms":...,"args":{...}}]}],
///    "thread_names":{"<index>":"pool-worker-0",...}}
/// thread_names covers the registry-named threads referenced by the spans,
/// so a remote consumer can label tracks without access to this process.
[[nodiscard]] std::string flight_records_json(
    const std::vector<TraceRecord>& records);

/// Parse flight_records_json output back into records (throws
/// std::runtime_error on shape violations).  Used by `jps_serve trace
/// --chrome-out` and the scrape validators.
[[nodiscard]] std::vector<TraceRecord> flight_records_from_json(
    const util::Json& json);

/// The "thread_names" map from flight_records_json output: (thread index,
/// name) pairs.  Empty (never a throw) when the section is absent.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
flight_thread_names_from_json(const util::Json& json);

/// Structural validation of one trace: every parent_span_id resolves inside
/// the trace or is 0/external, parent links are acyclic, exactly the spans
/// whose parent is absent are roots, and every child's [start, start+dur]
/// interval nests inside its parent's (with `slack_ms` tolerance for clock
/// granularity).  Returns an empty string when valid, else a description of
/// the first violation.
[[nodiscard]] std::string validate_trace(const TraceRecord& record,
                                         double slack_ms = 0.05);

}  // namespace jps::obs
