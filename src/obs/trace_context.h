// Request-scoped trace identity, propagated across threads and the wire.
//
// A TraceContext names one request (128-bit trace id) and one position in
// that request's span tree (64-bit span id).  The context is thread-local:
// obs::Span reads it on construction to stamp its SpanRecord with
// trace/span/parent ids and installs itself as the current context for the
// duration, so nested spans form a causal tree without any explicit
// plumbing.  util::ThreadPool captures the submitter's context and restores
// it inside the worker, so a request that hops threads (admission on a
// connection thread, plan compute on a pool worker) still yields one tree.
//
// Across processes the context rides wire protocol v3 as three u64 fields
// on PlanRequest (trace_hi | trace_lo | parent span id); the server adopts
// the client's ids so a fleet-wide trace stays joinable.
//
// Ids are never zero: an all-zero context means "not traced".  This header
// is self-contained and depends on the standard library only (obs.h
// includes it).
#pragma once

#include <cstdint>
#include <string>

namespace jps::obs {

/// Identity of the current request (trace) and span.  Copyable value type;
/// an all-zero trace id means "no trace in progress".
struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  std::uint64_t trace_lo = 0;  ///< low 64 bits of the 128-bit trace id
  std::uint64_t span_id = 0;   ///< current span (parent of new child spans)

  /// True when this context names a real trace.
  [[nodiscard]] bool valid() const { return (trace_hi | trace_lo) != 0; }

  [[nodiscard]] bool operator==(const TraceContext& other) const {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo &&
           span_id == other.span_id;
  }

  /// The calling thread's current context (invalid when none installed).
  [[nodiscard]] static TraceContext current();

  /// Replace the calling thread's current context.
  static void set_current(const TraceContext& context);

  /// Mint a fresh root context: new random-ish 128-bit trace id, new span
  /// id.  Never returns an invalid context.
  [[nodiscard]] static TraceContext start();

  /// Mint a fresh non-zero span id (process-unique).
  [[nodiscard]] static std::uint64_t next_span_id();
};

/// RAII: install `context` as the calling thread's current context, restore
/// the previous one on destruction.  Used by ThreadPool task wrappers and
/// the serve request handler.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context)
      : previous_(TraceContext::current()) {
    TraceContext::set_current(context);
  }
  ~TraceScope() { TraceContext::set_current(previous_); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

/// 32-char lowercase hex rendering of a 128-bit trace id.  JSON carries ids
/// as hex strings because util::Json numbers are doubles (53-bit mantissa).
[[nodiscard]] std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo);

/// 16-char lowercase hex rendering of a 64-bit span id.
[[nodiscard]] std::string span_id_hex(std::uint64_t id);

/// Parse a 16-char hex string back to a u64 (throws std::invalid_argument
/// on malformed input).  Used by the trace-dump JSON reader.
[[nodiscard]] std::uint64_t parse_hex_u64(const std::string& text);

}  // namespace jps::obs
