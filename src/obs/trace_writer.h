// Chrome trace-event JSON exporter.
//
// Renders obs spans (and anything else with a start, a duration and a
// track) into the Trace Event Format consumed by about:tracing and
// Perfetto (https://ui.perfetto.dev — "Open trace file").  Only the pieces
// this repo needs are implemented: complete events ("ph":"X"), the
// process/thread-name metadata events that label tracks, and flow events
// ("ph":"s"/"f") that draw arrows between spans of one trace when a request
// hops threads (connection handler -> pool worker).
//
// Convention used throughout the repo:
//   pid 0 — instrumentation spans (one tid per recording thread)
//   pid 1 — simulated timeline (one tid per simulator resource)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace jps::obs {

/// Escape a string for embedding in a JSON string literal (quotes excluded).
[[nodiscard]] std::string json_escape(const std::string& text);

class TraceWriter {
 public:
  /// One complete ("X") trace event, kept in insertion order.
  struct Event {
    std::string name;
    std::string category;
    int pid = 0;
    std::uint64_t tid = 0;
    double start_ms = 0.0;
    double dur_ms = 0.0;
    std::vector<std::pair<std::string, std::string>> args;
  };

  /// Label a process track (rendered as a group header).
  void set_process_name(int pid, const std::string& name);

  /// Label one thread track within a process.
  void set_thread_name(int pid, std::uint64_t tid, const std::string& name);

  /// Append one complete event.
  void add_event(Event event);

  /// One flow arrow endpoint ("s" = start on the producing track, "f" with
  /// bp:"e" = finish on the consuming track).  Chrome joins endpoints by id.
  struct FlowPoint {
    std::uint64_t id = 0;
    std::string name;
    int pid = 0;
    std::uint64_t tid = 0;
    double ts_ms = 0.0;
    bool start = false;
  };

  /// Append every span as a complete event under `pid` (tid = recording
  /// thread index).  For each parent/child span pair of the same trace that
  /// ran on *different* threads, also emit a flow arrow from the parent's
  /// track to the child's so the causal tree stays readable across tracks.
  void add_spans(const std::vector<SpanRecord>& spans, int pid = 0);

  /// Append the registry's counters as one "args" blob on a zero-duration
  /// metadata-ish event so the values travel with the trace file.
  void add_counter_snapshot(
      const std::vector<std::pair<std::string, std::uint64_t>>& counters,
      int pid = 0);

  /// Serialize everything as a Trace Event Format JSON object.
  [[nodiscard]] std::string json() const;

  /// Write json() to `path` (throws std::runtime_error on I/O failure).
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::vector<FlowPoint>& flows() const { return flows_; }

 private:
  std::vector<Event> events_;
  std::vector<FlowPoint> flows_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::vector<std::pair<std::pair<int, std::uint64_t>, std::string>>
      thread_names_;
};

}  // namespace jps::obs
