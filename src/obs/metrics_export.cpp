#include "obs/metrics_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace jps::obs {

namespace {

// Shortest-ish round-trippable double rendering (%.17g trims to %g when
// exact); OpenMetrics and JSON both accept plain decimal/exponent floats.
std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lf", &parsed);
  if (parsed != value)
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture(const Registry& registry) {
  MetricsSnapshot snapshot;
  snapshot.counters = registry.counters();
  snapshot.gauges = registry.gauges();
  snapshot.histograms = registry.histograms();
  snapshot.exemplars = FlightRecorder::global().exemplars();
  return snapshot;
}

namespace {

// Exemplars for one histogram, keyed by bucket index (exemplars() is sorted
// by (histogram, bucket) so a linear scan per histogram stays cheap).
std::vector<const Exemplar*> exemplars_for(const MetricsSnapshot& snapshot,
                                           const std::string& histogram) {
  std::vector<const Exemplar*> out;
  for (const Exemplar& exemplar : snapshot.exemplars)
    if (exemplar.histogram == histogram) out.push_back(&exemplar);
  return out;
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out = "jps_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " counter\n"
        << metric << "_total " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << " " << format_double(value) << "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " histogram\n";
    // Cumulative buckets; empty buckets are elided (cumulative counts stay
    // correct over any subset of boundaries) and `+Inf` always closes the
    // series.  The count/`+Inf` samples come from the bucket totals so the
    // exposition is internally consistent even against a racing record().
    const std::vector<const Exemplar*> exemplars =
        exemplars_for(snapshot, name);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] == 0) continue;
      cumulative += histogram.buckets[i];
      const bool overflow = i + 1 == histogram.buckets.size();
      if (!overflow) {
        out << metric << "_bucket{le=\""
            << format_double(Histogram::bucket_upper(i)) << "\"} "
            << cumulative;
        // OpenMetrics exemplar suffix: ` # {trace_id="..."} value`.
        for (const Exemplar* exemplar : exemplars) {
          if (exemplar->bucket != i) continue;
          out << " # {trace_id=\""
              << trace_id_hex(exemplar->trace_hi, exemplar->trace_lo)
              << "\"} " << format_double(exemplar->value);
          break;
        }
        out << "\n";
      }
    }
    out << metric << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
        << metric << "_sum " << format_double(histogram.sum) << "\n"
        << metric << "_count " << cumulative << "\n";
  }
  out << "# EOF\n";
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(snapshot.gauges[i].first)
        << "\": " << format_double(snapshot.gauges[i].second);
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << h.count
        << ", \"sum\": " << format_double(h.sum)
        << ", \"min\": " << format_double(h.min)
        << ", \"max\": " << format_double(h.max)
        << ", \"mean\": " << format_double(h.mean())
        << ", \"p50\": " << format_double(h.percentile(50))
        << ", \"p90\": " << format_double(h.percentile(90))
        << ", \"p95\": " << format_double(h.percentile(95))
        << ", \"p99\": " << format_double(h.percentile(99))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const bool overflow = b + 1 == h.buckets.size();
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (overflow ? std::string("\"+Inf\"")
                       : format_double(Histogram::bucket_upper(b)))
          << ", \"count\": " << h.buckets[b] << "}";
      first_bucket = false;
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ")
      << "},\n  \"exemplars\": {";
  bool first_histogram = true;
  std::string open_histogram;
  for (std::size_t i = 0; i < snapshot.exemplars.size(); ++i) {
    const Exemplar& exemplar = snapshot.exemplars[i];
    if (exemplar.histogram != open_histogram) {
      if (!open_histogram.empty()) out << "]";
      out << (first_histogram ? "\n" : ",\n") << "    \""
          << json_escape(exemplar.histogram) << "\": [";
      open_histogram = exemplar.histogram;
      first_histogram = false;
    } else {
      out << ", ";
    }
    const bool overflow = exemplar.bucket + 1 >= Histogram::kBucketCount;
    out << "{\"le\": "
        << (overflow ? std::string("\"+Inf\"")
                     : format_double(Histogram::bucket_upper(exemplar.bucket)))
        << ", \"value\": " << format_double(exemplar.value)
        << ", \"trace_id\": \""
        << trace_id_hex(exemplar.trace_hi, exemplar.trace_lo) << "\"}";
  }
  if (!open_histogram.empty()) out << "]";
  out << (snapshot.exemplars.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void write_metrics_file(const std::string& path, const std::string& format,
                        const MetricsSnapshot& snapshot) {
  std::string body;
  if (format == "openmetrics" || format == "prometheus") {
    body = to_openmetrics(snapshot);
  } else if (format == "json") {
    body = to_json(snapshot);
  } else {
    throw std::invalid_argument("unknown metrics format '" + format +
                                "' (expected openmetrics or json)");
  }
  // Atomic publish (same pattern as the cache snapshot): a scraper racing
  // this writer must never observe a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw std::runtime_error("cannot open '" + tmp + "' for write");
    file << body;
    if (!file.good())
      throw std::runtime_error("failed writing metrics to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("failed renaming '" + tmp + "' to '" + path +
                             "'");
  }
}

}  // namespace jps::obs
