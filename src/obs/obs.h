// Lightweight runtime observability: spans and counters.
//
// The planner, plan cache, profile-curve builder, thread pool and simulator
// all claim analytic performance properties (O(n) sweeps, cache hits,
// pooled dispatch).  This module makes those claims visible at runtime:
// a Span records a wall-clock interval on the executing thread, a Counter
// counts monotone events, and the process-wide Registry collects both so
// tools can dump them (`jps_cli --metrics`) or render them as a Chrome
// trace (`obs::TraceWriter`, `jps_cli --trace-out`).
//
// Cost model:
//   * Counters are always live — one relaxed atomic add per event.
//   * Spans are recorded only while tracing is enabled (the JPS_TRACE
//     environment variable, or set_enabled(true)); a disabled Span does not
//     read the clock.
//
// This is the lowest layer of the repo (depends on the standard library
// only) so every other module may instrument itself freely.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jps::obs {

/// True when span recording is on: JPS_TRACE set to a non-empty value other
/// than "0" at first query, or the last set_enabled() call.
[[nodiscard]] bool enabled();

/// Force span recording on/off for this process (overrides JPS_TRACE).
void set_enabled(bool on);

/// One finished span as stored by the registry.
struct SpanRecord {
  std::string name;
  std::string category;
  /// Milliseconds since the process trace epoch (first registry use).
  double start_ms = 0.0;
  double dur_ms = 0.0;
  /// Small stable index of the recording thread (0 = first thread seen).
  std::uint64_t thread = 0;
  /// Free-form key/value annotations (rendered as trace-event args).
  std::vector<std::pair<std::string, std::string>> args;
};

/// RAII wall-clock span.  Construct to start, destroy to record.  When
/// tracing is disabled at construction the span is inert (no clock reads,
/// nothing recorded).
class Span {
 public:
  explicit Span(std::string name, std::string category = "jps");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an annotation (no-op when the span is inert).
  void arg(std::string key, std::string value);
  void arg(std::string key, double value);

  /// Whether this span will be recorded on destruction.
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  double start_ms_ = 0.0;
  SpanRecord record_;
};

/// A named monotone counter.  Handles are obtained from the registry (or the
/// counter() convenience below) and stay valid for the process lifetime.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Zero the counter (tests and --metrics resets).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Process-wide sink for spans and counters.  All methods are thread-safe.
class Registry {
 public:
  /// The singleton every Span/Counter reports into.
  [[nodiscard]] static Registry& global();

  /// Append one finished span (called by ~Span).
  void record(SpanRecord record);

  /// Snapshot of all recorded spans, in completion order.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::size_t span_count() const;

  /// Get-or-create the counter registered under `name`.
  [[nodiscard]] Counter& counter(const std::string& name);

  /// Snapshot of (name, value) for every registered counter, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;

  /// Milliseconds since the trace epoch (the first use of the registry).
  [[nodiscard]] double now_ms() const;

  /// Stable small index for the calling thread.
  [[nodiscard]] std::uint64_t thread_index();

  /// Drop recorded spans (counters keep their values).
  void clear_spans();

  /// Drop spans and zero every counter (test isolation).
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

/// Convenience: the global registry's counter `name`.  Typical use binds a
/// static reference once per call site:
///   static obs::Counter& plans = obs::counter("planner.plans");
[[nodiscard]] inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}

}  // namespace jps::obs
