// Lightweight runtime observability: spans, counters, gauges, histograms.
//
// The planner, plan cache, profile-curve builder, thread pool and simulator
// all claim analytic performance properties (O(n) sweeps, cache hits,
// pooled dispatch).  This module makes those claims visible at runtime:
// a Span records a wall-clock interval on the executing thread, a Counter
// counts monotone events, a Gauge holds a last value (queue depth, hit
// ratio), a Histogram records a latency distribution (obs/metrics.h), and
// the process-wide Registry collects all of them so tools can dump them
// (`jps_cli --metrics`, `--metrics-out` OpenMetrics/JSON exposition) or
// render spans as a Chrome trace (`obs::TraceWriter`, `jps_cli
// --trace-out`).
//
// Cost model:
//   * Counters and gauges are always live — one relaxed atomic op per event.
//   * Histogram recording is always live and lock-free (see obs/metrics.h).
//   * Spans are recorded only while tracing is enabled (the JPS_TRACE
//     environment variable, or set_enabled(true)); a disabled Span does not
//     read the clock.  Span storage is bounded (set_span_capacity); spans
//     beyond the cap are dropped and counted in `obs.spans_dropped`.
//
// This is the lowest layer of the repo (depends on the standard library
// only) so every other module may instrument itself freely.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_context.h"

namespace jps::obs {

class Gauge;               // obs/metrics.h
class Histogram;           // obs/metrics.h
struct HistogramSnapshot;  // obs/metrics.h

/// True when span recording is on: JPS_TRACE set to a non-empty value other
/// than "0" at first query, or the last set_enabled() call.
[[nodiscard]] bool enabled();

/// Force span recording on/off for this process (overrides JPS_TRACE).
void set_enabled(bool on);

/// One finished span as stored by the registry.
struct SpanRecord {
  std::string name;
  std::string category;
  /// Milliseconds since the process trace epoch (first registry use).
  double start_ms = 0.0;
  double dur_ms = 0.0;
  /// Small stable index of the recording thread (0 = first thread seen).
  std::uint64_t thread = 0;
  /// Trace identity (all zero when the span ran outside any request trace).
  /// See obs/trace_context.h; parent_span_id == 0 marks a root span.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  /// Free-form key/value annotations (rendered as trace-event args).
  std::vector<std::pair<std::string, std::string>> args;
};

/// RAII wall-clock span.  Construct to start, destroy to record.  A span is
/// live when process-wide tracing is enabled OR the calling thread carries a
/// valid TraceContext with the flight recorder on; otherwise it is inert
/// (no clock reads, nothing recorded).  A live span under a TraceContext
/// stamps trace/span/parent ids and installs itself as the current context,
/// so nested spans form a causal tree.
class Span {
 public:
  explicit Span(std::string name, std::string category = "jps");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an annotation (no-op when the span is inert).
  void arg(std::string key, std::string value);
  void arg(std::string key, double value);

  /// Whether this span will be recorded on destruction.
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  bool installed_ = false;  ///< true when this span replaced the thread ctx
  double start_ms_ = 0.0;
  TraceContext previous_;
  SpanRecord record_;
};

/// A named monotone counter.  Handles are obtained from the registry (or the
/// counter() convenience below) and stay valid for the process lifetime.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Zero the counter (tests and --metrics resets).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Process-wide sink for spans, counters, gauges and histograms.  All
/// methods are thread-safe.
class Registry {
 public:
  /// Default bound on stored spans (see set_span_capacity).
  static constexpr std::size_t kDefaultSpanCapacity = 1u << 17;  // 131072

  /// The singleton every Span/Counter reports into.
  [[nodiscard]] static Registry& global();

  /// Append one finished span (called by ~Span).  Once span_capacity()
  /// spans are stored further records are dropped and counted in the
  /// `obs.spans_dropped` counter, so a long traced run (e.g. a fault
  /// Monte-Carlo with JPS_TRACE on) cannot grow memory without bound.
  void record(SpanRecord record);

  /// Change the span storage bound (takes effect for future records).
  void set_span_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t span_capacity() const;
  /// Spans dropped by the capacity cap since the last reset().
  [[nodiscard]] std::uint64_t spans_dropped() const;

  /// Snapshot of all recorded spans, in completion order.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::size_t span_count() const;

  /// Get-or-create the counter registered under `name`.
  [[nodiscard]] Counter& counter(const std::string& name);

  /// Get-or-create the gauge registered under `name`.
  [[nodiscard]] Gauge& gauge(const std::string& name);

  /// Get-or-create the histogram registered under `name`.
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Snapshot of (name, value) for every registered counter, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;

  /// Snapshot of (name, value) for every registered gauge, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;

  /// Snapshot of every registered histogram, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histograms() const;

  /// Milliseconds since the trace epoch (the first use of the registry).
  [[nodiscard]] double now_ms() const;

  /// Stable small index for the calling thread.
  [[nodiscard]] std::uint64_t thread_index();

  /// Label the calling thread (e.g. "pool-worker-3", "serve-conn-0") for
  /// Chrome-trace thread metadata.  Last call wins.
  void set_thread_name(const std::string& name);

  /// Snapshot of (thread index, name) for every named thread, sorted by
  /// index.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
  thread_names() const;

  /// Drop recorded spans (counters keep their values).
  void clear_spans();

  /// Drop spans and zero every counter, gauge and histogram (test
  /// isolation).  The span capacity reverts to kDefaultSpanCapacity.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

/// Convenience: the global registry's counter `name`.  Typical use binds a
/// static reference once per call site:
///   static obs::Counter& plans = obs::counter("planner.plans");
[[nodiscard]] inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}

/// Convenience: the global registry's gauge `name` (see obs/metrics.h).
[[nodiscard]] Gauge& gauge(const std::string& name);

/// Convenience: the global registry's histogram `name` (see obs/metrics.h).
[[nodiscard]] Histogram& histogram(const std::string& name);

}  // namespace jps::obs
