#include "obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>

namespace jps::obs {

namespace {

thread_local TraceContext tl_current;

// splitmix64: cheap, well-mixed stream generator.  We only need ids that
// are unique within a fleet with overwhelming probability, not
// cryptographic randomness.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t>& id_state() {
  static std::atomic<std::uint64_t> state = [] {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return seed;
  }();
  return state;
}

std::uint64_t next_id() {
  for (;;) {
    const std::uint64_t raw =
        id_state().fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = splitmix64(raw);
    if (id != 0) return id;  // zero is the "not traced" sentinel
  }
}

}  // namespace

TraceContext TraceContext::current() { return tl_current; }

void TraceContext::set_current(const TraceContext& context) {
  tl_current = context;
}

TraceContext TraceContext::start() {
  TraceContext context;
  context.trace_hi = next_id();
  context.trace_lo = next_id();
  context.span_id = next_id();
  return context;
}

std::uint64_t TraceContext::next_span_id() { return next_id(); }

namespace {

void append_hex_u64(std::string& out, std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(value >> shift) & 0xF]);
}

}  // namespace

std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo) {
  std::string out;
  out.reserve(32);
  append_hex_u64(out, hi);
  append_hex_u64(out, lo);
  return out;
}

std::string span_id_hex(std::uint64_t id) {
  std::string out;
  out.reserve(16);
  append_hex_u64(out, id);
  return out;
}

std::uint64_t parse_hex_u64(const std::string& text) {
  if (text.empty() || text.size() > 16)
    throw std::invalid_argument("parse_hex_u64: expected 1..16 hex chars");
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("parse_hex_u64: non-hex character");
    }
  }
  return value;
}

}  // namespace jps::obs
