// Metrics exposition: one snapshot struct, two text formats.
//
//   * OpenMetrics / Prometheus text — scrapeable by any Prometheus-family
//     collector; histograms expose cumulative `_bucket{le="..."}` series
//     plus `_sum`/`_count`, counters a `_total` sample, gauges a plain
//     sample.  Ends with the mandatory `# EOF`.
//   * JSON — machine-readable dump for scripts and the bench telemetry
//     pipeline (histograms carry count/sum/min/max/mean/p50/p90/p95/p99
//     plus the non-empty buckets).
//
// `jps_cli --metrics-out=FILE --metrics-format=openmetrics|json` writes
// either one.  Naming: registry names are dotted (`plan_cache.hit_ratio`);
// OpenMetrics output sanitizes them to `jps_plan_cache_hit_ratio`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace jps::obs {

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  /// Histogram exemplars from the flight recorder: per-bucket links from a
  /// latency bucket to the trace id of the most recent request that landed
  /// there.  Empty when the recorder is off.
  std::vector<Exemplar> exemplars;

  /// Snapshot the given registry (default: the process-wide one).  Exemplars
  /// always come from the process-wide FlightRecorder.
  [[nodiscard]] static MetricsSnapshot capture(
      const Registry& registry = Registry::global());
};

/// Prometheus metric name: dots/dashes to underscores, `jps_` prefix.
[[nodiscard]] std::string openmetrics_name(const std::string& name);

/// OpenMetrics text exposition of the snapshot (ends with `# EOF`).
[[nodiscard]] std::string to_openmetrics(const MetricsSnapshot& snapshot);

/// JSON exposition of the snapshot.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Serialize `snapshot` in `format` ("openmetrics" or "json") and write it
/// to `path` atomically: the body lands in `path + ".tmp"` first and is
/// renamed into place, so a concurrent reader sees either the old complete
/// file or the new complete file, never a torn write.  Throws
/// std::invalid_argument on an unknown format and std::runtime_error when
/// the file cannot be written.
void write_metrics_file(const std::string& path, const std::string& format,
                        const MetricsSnapshot& snapshot);

}  // namespace jps::obs
