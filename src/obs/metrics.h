// Metrics primitives: log-linear histograms, gauges, and scoped timers.
//
// PR 2 gave the repo spans (wall-clock intervals) and counters (monotone
// events).  Neither can answer the questions the paper's evaluation asks —
// "what is the p95 makespan?", "what is the cache hit *ratio*?", "did this
// change make planning slower?".  This header adds the missing shapes:
//
//   * Histogram   — a mergeable latency/size distribution with bounded
//                   relative error and lock-free recording.
//   * Gauge       — a last-value instrument (set/add), e.g. queue depth,
//                   cache hit ratio, effective bandwidth.
//   * ScopedTimer — RAII wall-clock interval that feeds a Histogram.
//
// Cost model (the reason these are safe to leave always-on):
//   * Gauge::set/add       — one relaxed atomic op.
//   * Histogram::record    — one relaxed fetch_add on the bucket plus four
//                            relaxed ops on a per-thread shard (count, sum,
//                            min, max).  No locks, no allocation.
//   * ScopedTimer          — two steady_clock reads + one record().
//
// Bucket layout (log-linear, HdrHistogram-style): every power-of-two octave
// in [2^kMinExp, 2^kMaxExp) is split into kSubBuckets equal-width linear
// sub-buckets, plus an underflow bucket (zero, negative, or tiny values)
// and an overflow bucket.  Within an octave the bucket width is
// 2^octave / kSubBuckets and the bucket's lower bound is at least
// 2^octave, so reporting a bucket midpoint is wrong by at most
// 1 / (2 * kSubBuckets) relative — kRelativeError, ~1.6% at 32 sub-buckets.
// Two histograms always share the same layout, so snapshots merge by
// bucket-wise addition (exact, associative on counts).
//
// Like the rest of jps::obs this depends on the standard library only.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace jps::obs {

/// Point-in-time copy of a histogram: plain integers/doubles, mergeable,
/// queryable.  Obtained from Histogram::snapshot() or built by exporters.
struct HistogramSnapshot {
  /// Occupancy per bucket (Histogram::kBucketCount entries; empty when the
  /// snapshot was default-constructed and never merged into).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Smallest/largest recorded values (0 when count == 0).
  double min = 0.0;
  double max = 0.0;

  /// Estimated p-th percentile (p in [0, 100]): the midpoint of the bucket
  /// holding the rank, so relative error is bounded by
  /// Histogram::kRelativeError.  0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// sum / count (0 when empty).
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Bucket-wise addition.  Exact and associative on counts; sums are
  /// floating-point adds.  Throws std::invalid_argument when the layouts
  /// differ (cannot happen for snapshots of this library's histograms).
  void merge(const HistogramSnapshot& other);
};

/// A mergeable log-linear latency/size distribution.  All methods are
/// thread-safe; record() is lock-free (relaxed atomics only).  Handles from
/// Registry::histogram() stay valid for the process lifetime.
class Histogram {
 public:
  /// Smallest/largest finite octave: values in [2^kMinExp, 2^kMaxExp) land
  /// in log-linear buckets; outside they clamp to underflow/overflow.  The
  /// range covers sub-microsecond to ~12-day intervals in ms units.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 30;
  /// Linear sub-buckets per power-of-two octave.
  static constexpr std::size_t kSubBuckets = 32;
  /// underflow + 50 octaves * 32 + overflow.
  static constexpr std::size_t kBucketCount =
      2 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;
  /// Worst-case relative error of a bucket midpoint vs the true value.
  static constexpr double kRelativeError = 0.5 / static_cast<double>(kSubBuckets);

  explicit Histogram(std::string name = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one observation.  Lock-free; safe from any thread.
  void record(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Estimated percentile; see HistogramSnapshot::percentile.
  [[nodiscard]] double percentile(double p) const {
    return snapshot().percentile(p);
  }

  /// Consistent-enough copy for export: each atomic is read individually
  /// (a racing record() may appear in the buckets but not yet in count, or
  /// vice versa; quiescent histograms snapshot exactly).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zero every bucket and shard (test isolation; not linearizable against
  /// concurrent record()).
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Index of the bucket `value` lands in.
  [[nodiscard]] static std::size_t bucket_index(double value);
  /// Inclusive lower / exclusive upper bound of bucket `index`.  The
  /// underflow bucket spans [0, 2^kMinExp); the overflow bucket reports
  /// [2^kMaxExp, 2^kMaxExp) — callers render its bound as +Inf.
  [[nodiscard]] static double bucket_lower(std::size_t index);
  [[nodiscard]] static double bucket_upper(std::size_t index);
  /// The value reported for ranks inside bucket `index` (midpoint; 0 for
  /// the underflow bucket, the range top for overflow).
  [[nodiscard]] static double bucket_midpoint(std::size_t index);

 private:
  // Count/sum/min/max are striped across shards so concurrent recorders on
  // different threads do not contend on one cache line; buckets are shared
  // (different values hit different lines anyway).
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    // min/max start at +/-inf sentinels; snapshot() skips empty shards.
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  static constexpr std::size_t kShards = 8;

  Shard& shard();

  std::string name_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  Shard shards_[kShards];
};

/// A last-value instrument.  set()/add() are one relaxed atomic op, cheap
/// enough to leave on hot paths unconditionally.  Handles from
/// Registry::gauge() stay valid for the process lifetime.
class Gauge {
 public:
  explicit Gauge(std::string name = {}) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// RAII wall-clock timer feeding a histogram in milliseconds.  Unlike Span
/// it is always live (histogram recording is lock-free), so it is the right
/// tool for distributions on hot paths; use Span when you want the interval
/// on a trace timeline instead.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->record(elapsed_ms());
  }

  /// Milliseconds since construction.
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Detach: nothing is recorded at destruction.
  void cancel() { sink_ = nullptr; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jps::obs
