#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace jps::obs {

namespace {

constexpr double min_value() { return 9.5367431640625e-07; }  // 2^-20
constexpr double max_value() { return 1073741824.0; }         // 2^30

constexpr double kMinSentinel = std::numeric_limits<double>::infinity();
constexpr double kMaxSentinel = -std::numeric_limits<double>::infinity();

// Relaxed CAS folds; shards start at +/-inf sentinels so no "first value"
// special case is needed (snapshot() skips shards with count == 0).
void fold_min(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::string name)
    : name_(std::move(name)), buckets_(kBucketCount) {}

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= min_value())) return 0;  // zero, negative, tiny, or NaN
  if (value >= max_value()) return kBucketCount - 1;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  // value lies in octave [2^(exp-1), 2^exp); m in [0.5, 1).
  const auto octave = static_cast<std::size_t>(exp - 1 - kMinExp);
  auto sub = static_cast<std::size_t>((mantissa - 0.5) *
                                      (2.0 * static_cast<double>(kSubBuckets)));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // m == 1-ulp rounding guard
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucket_lower(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBucketCount - 1) return max_value();
  const std::size_t linear = index - 1;
  const auto octave = static_cast<int>(linear / kSubBuckets);
  const auto sub = static_cast<double>(linear % kSubBuckets);
  return std::ldexp(1.0, kMinExp + octave) *
         (1.0 + sub / static_cast<double>(kSubBuckets));
}

double Histogram::bucket_upper(std::size_t index) {
  if (index == 0) return min_value();
  if (index >= kBucketCount - 1) return max_value();
  const std::size_t linear = index - 1;
  const auto octave = static_cast<int>(linear / kSubBuckets);
  const auto sub = static_cast<double>(linear % kSubBuckets) + 1.0;
  return std::ldexp(1.0, kMinExp + octave) *
         (1.0 + sub / static_cast<double>(kSubBuckets));
}

double Histogram::bucket_midpoint(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBucketCount - 1) return max_value();
  return 0.5 * (bucket_lower(index) + bucket_upper(index));
}

Histogram::Shard& Histogram::shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[index];
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard();
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  fold_min(s.min, value);
  fold_max(s.max, value);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  bool any = false;
  for (const Shard& s : shards_) {
    const std::uint64_t n = s.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.sum += s.sum.load(std::memory_order_relaxed);
    const double lo = s.min.load(std::memory_order_relaxed);
    const double hi = s.max.load(std::memory_order_relaxed);
    if (!any || lo < snap.min) snap.min = lo;
    if (!any || hi > snap.max) snap.max = hi;
    any = true;
  }
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(kMinSentinel, std::memory_order_relaxed);
    s.max.store(kMaxSentinel, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Same rank convention as util::percentile (inclusive, linear): the
  // target rank is p% of the way through [0, count-1].
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative > 0 && static_cast<double>(cumulative - 1) >= rank)
      return Histogram::bucket_midpoint(i);
  }
  // All mass below rank (racy snapshot): report the largest occupied bucket.
  for (std::size_t i = buckets.size(); i-- > 0;)
    if (buckets[i] > 0) return Histogram::bucket_midpoint(i);
  return 0.0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.buckets.empty() || other.count == 0) {
    if (!other.buckets.empty() && buckets.empty()) buckets = other.buckets;
    return;
  }
  if (buckets.empty()) {
    *this = other;
    return;
  }
  if (buckets.size() != other.buckets.size())
    throw std::invalid_argument("HistogramSnapshot::merge: layout mismatch");
  for (std::size_t i = 0; i < buckets.size(); ++i)
    buckets[i] += other.buckets[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  count += other.count;
  sum += other.sum;
}

}  // namespace jps::obs
