// Stochastic profiling harness.
//
// Substitutes the paper's PyTorch-Profiler measurement campaign: each layer
// is "measured" `trials` times by sampling the analytic latency model with
// multiplicative log-normal noise, and the per-layer median becomes the
// entry of the scheduler's lookup table (the paper also treats local compute
// time as stable and caches it, §6.1).
#pragma once

#include <vector>

#include "dnn/graph.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "util/rng.h"

namespace jps::profile {

/// Aggregate of one layer's measurement trials.
struct ProfileRecord {
  dnn::NodeId node = 0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  int trials = 0;
};

/// Measurement campaign settings.
struct ProfilerOptions {
  int trials = 11;
  /// Sigma of the log-normal noise on each trial; 0 = exact model readings.
  double noise_sigma = 0.05;
  /// Discard this many warm-up trials before aggregating (cold caches /
  /// first-touch allocations on real devices; simulated the same way).
  int warmup_trials = 2;
  /// Warm-up factor: warm-up trials run this much slower than steady state.
  double warmup_penalty = 1.6;
};

class Profiler {
 public:
  Profiler(DeviceProfile device, ProfilerOptions options = {});

  /// Measure one node of an inferred graph.
  [[nodiscard]] ProfileRecord measure_node(const dnn::Graph& g, dnn::NodeId id,
                                           util::Rng& rng) const;

  /// Measure every node of the graph, in topological order.
  [[nodiscard]] std::vector<ProfileRecord> measure_graph(const dnn::Graph& g,
                                                         util::Rng& rng) const;

  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] const ProfilerOptions& options() const { return options_; }

 private:
  LatencyModel model_;
  ProfilerOptions options_;
};

}  // namespace jps::profile
