#include "profile/lookup_table.h"

#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace jps::profile {

namespace {
constexpr const char* kHeader = "jps-lookup-table v1";
}

void LookupTable::set(const std::string& model, dnn::NodeId node,
                      double time_ms) {
  // The text format is line- and tab-delimited, so these characters in a
  // model name would serialize fine but corrupt the round-trip.  Reject
  // them at insertion, where the caller can still see the bad name.
  if (model.find_first_of("\t\n\r") != std::string::npos) {
    throw std::invalid_argument(
        "LookupTable::set: model name contains tab/newline: '" + model + "'");
  }
  entries_[{model, node}] = time_ms;
}

std::optional<double> LookupTable::get(const std::string& model,
                                       dnn::NodeId node) const {
  const auto it = entries_.find({model, node});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

double LookupTable::at(const std::string& model, dnn::NodeId node) const {
  const auto v = get(model, node);
  if (!v) {
    throw std::out_of_range("LookupTable: no entry for " + model + "/node" +
                            std::to_string(node));
  }
  return *v;
}

bool LookupTable::covers(const dnn::Graph& g) const {
  for (dnn::NodeId id = 0; id < g.size(); ++id) {
    if (!get(g.name(), id)) return false;
  }
  return true;
}

void LookupTable::add_graph(const dnn::Graph& g,
                            const std::vector<ProfileRecord>& records) {
  for (const auto& rec : records) set(g.name(), rec.node, rec.median_ms);
}

std::string LookupTable::serialize() const {
  std::ostringstream os;
  os << kHeader << '\n';
  os.precision(12);
  for (const auto& [key, ms] : entries_)
    os << key.first << '\t' << key.second << '\t' << ms << '\n';
  return os.str();
}

LookupTable LookupTable::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || util::trim(line) != kHeader)
    throw std::runtime_error("LookupTable: bad header");
  LookupTable table;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (util::trim(line).empty()) continue;
    const auto fields = util::split(line, '\t');
    if (fields.size() != 3)
      throw std::runtime_error("LookupTable: bad line " + std::to_string(line_no));
    // parse_int/parse_double are strict (whole field, C locale): stod used
    // to truncate "3.5" to 3 under a comma-decimal locale and silently
    // accepted trailing garbage.
    const std::optional<std::int64_t> node = util::parse_int(fields[1]);
    const std::optional<double> ms = util::parse_double(fields[2]);
    if (!node || *node < 0 || !ms)
      throw std::runtime_error("LookupTable: unparsable line " +
                               std::to_string(line_no));
    table.set(fields[0], static_cast<dnn::NodeId>(*node), *ms);
  }
  return table;
}

void LookupTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("LookupTable: cannot open " + path);
  out << serialize();
  if (!out) throw std::runtime_error("LookupTable: write failed for " + path);
}

LookupTable LookupTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LookupTable: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace jps::profile
