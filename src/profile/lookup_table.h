// The scheduler's per-layer computation-time lookup table (§6.1).
//
// "To reduce the estimation overhead, we build a lookup table for computation
//  time considering the local computation time stable."  Keys are
// (model name, node id); values are milliseconds.  The table serializes to a
// line-oriented text format so a pre-built table can ship with a deployment
// and be loaded at scheduler start-up, exactly as in the paper.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dnn/graph.h"
#include "profile/profiler.h"

namespace jps::profile {

class LookupTable {
 public:
  LookupTable() = default;

  /// Insert/overwrite the time of (model, node).  Throws
  /// std::invalid_argument when `model` contains a tab, newline, or carriage
  /// return (the serialized format could not round-trip such names).
  void set(const std::string& model, dnn::NodeId node, double time_ms);

  /// Lookup; nullopt when the pair was never profiled.
  [[nodiscard]] std::optional<double> get(const std::string& model,
                                          dnn::NodeId node) const;

  /// Lookup that throws std::out_of_range with a descriptive message.
  [[nodiscard]] double at(const std::string& model, dnn::NodeId node) const;

  /// True when every node of `g` has an entry.
  [[nodiscard]] bool covers(const dnn::Graph& g) const;

  /// Number of entries.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Ingest a profiling campaign for `g` (uses per-record medians).
  void add_graph(const dnn::Graph& g, const std::vector<ProfileRecord>& records);

  /// Serialize as "model<TAB>node<TAB>ms" lines with a versioned header.
  [[nodiscard]] std::string serialize() const;

  /// Parse the serialize() format. Throws std::runtime_error on bad input.
  [[nodiscard]] static LookupTable deserialize(const std::string& text);

  /// Write serialize() to a file. Throws std::runtime_error on I/O error.
  void save(const std::string& path) const;

  /// Read a file produced by save().
  [[nodiscard]] static LookupTable load(const std::string& path);

 private:
  std::map<std::pair<std::string, dnn::NodeId>, double> entries_;
};

}  // namespace jps::profile
