#include "profile/comm_regression.h"

#include <cmath>
#include <stdexcept>

namespace jps::profile {

namespace {
// The regressor variable r = bytes / bandwidth(Mbps), as in the paper.
double ratio(std::uint64_t bytes, double bandwidth_mbps) {
  return static_cast<double>(bytes) / bandwidth_mbps;
}
}  // namespace

CommRegression CommRegression::fit(
    const std::vector<CommObservation>& observations) {
  if (observations.size() < 2)
    throw std::invalid_argument("CommRegression: need >= 2 observations");
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(observations.size());
  ys.reserve(observations.size());
  for (const auto& obs : observations) {
    if (!std::isfinite(obs.bandwidth_mbps) || obs.bandwidth_mbps <= 0.0)
      throw std::invalid_argument("CommRegression: bad bandwidth");
    xs.push_back(ratio(obs.bytes, obs.bandwidth_mbps));
    ys.push_back(obs.time_ms);
  }
  CommRegression model;
  model.fit_ = util::fit_linear(xs, ys);
  return model;
}

CommRegression CommRegression::train_on_channel(const net::Channel& channel,
                                                std::uint64_t min_bytes,
                                                std::uint64_t max_bytes,
                                                int count, double noise_sigma,
                                                util::Rng& rng) {
  if (count < 2)
    throw std::invalid_argument("CommRegression: need >= 2 training points");
  if (min_bytes == 0 || max_bytes < min_bytes)
    throw std::invalid_argument("CommRegression: bad byte range");

  // A jittered copy of the channel produces the noisy "measurements".
  const net::Channel noisy(channel.bandwidth_mbps(), channel.setup_latency_ms(),
                           noise_sigma);
  std::vector<CommObservation> observations;
  observations.reserve(static_cast<std::size_t>(count));
  const double log_lo = std::log(static_cast<double>(min_bytes));
  const double log_hi = std::log(static_cast<double>(max_bytes));
  for (int i = 0; i < count; ++i) {
    const double t = count == 1 ? 0.0
                                : static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    const auto bytes =
        static_cast<std::uint64_t>(std::exp(log_lo + t * (log_hi - log_lo)));
    observations.push_back({bytes, channel.bandwidth_mbps(),
                            noisy.sample_ms(bytes, rng)});
  }
  return fit(observations);
}

double CommRegression::predict_ms(std::uint64_t bytes,
                                  double bandwidth_mbps) const {
  // Same validation as net::Channel and fit(): an unchecked divide here
  // turned a zero (or NaN) bandwidth into an inf/NaN prediction that
  // wandered through the planner instead of failing at the source.
  if (!std::isfinite(bandwidth_mbps) || bandwidth_mbps <= 0.0)
    throw std::invalid_argument("CommRegression: bad bandwidth");
  if (bytes == 0) return 0.0;  // no transfer at all
  return fit_(ratio(bytes, bandwidth_mbps));
}

}  // namespace jps::profile
