// Roofline-style analytic latency model for one device.
//
// A layer's execution time is modeled as
//     overhead + max(flops / rate(kind), memory_traffic / memory_bw)
// i.e. a layer is either compute-bound (dense conv) or memory-bound
// (pooling, activations, depthwise conv, very large FC weight streaming),
// whichever is slower.  This reproduces the per-layer time profile the paper
// measures with PyTorch Profiler (Fig. 4) without the hardware.
#pragma once

#include "dnn/graph.h"
#include "profile/device.h"

namespace jps::profile {

class LatencyModel {
 public:
  explicit LatencyModel(DeviceProfile device);

  /// Time to execute one node of an inferred graph on this device, ms.
  [[nodiscard]] double node_time_ms(const dnn::Graph& g, dnn::NodeId id) const;

  /// Sum of node_time_ms over all nodes (single-device full inference), ms.
  [[nodiscard]] double graph_time_ms(const dnn::Graph& g) const;

  [[nodiscard]] const DeviceProfile& device() const { return device_; }

 private:
  /// Effective FLOP rate (GFLOP/s) for a layer kind.
  [[nodiscard]] double rate_gflops(dnn::LayerKind kind) const;

  DeviceProfile device_;
};

}  // namespace jps::profile
