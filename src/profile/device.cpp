#include "profile/device.h"

namespace jps::profile {

DeviceProfile DeviceProfile::raspberry_pi_4b() {
  // Quad A72 @1.5 GHz: ~24 GFLOP/s peak NEON fp32, of which an eager-mode
  // framework sustains only a fraction on conv kernels, less on GEMM, and
  // LPDDR4 streams ~2 GB/s effectively.  The 2 ms per-layer dispatch
  // overhead models the Python/eager layer-launch cost that dominates
  // many-small-ops networks (it is why GoogLeNet, 144 ops, runs
  // disproportionately slowly on the Pi while ResNet-18's fewer, fatter
  // kernels stay comparatively fast — the asymmetry §6.3 reports).
  return DeviceProfile{
      .name = "raspberry_pi_4b",
      .conv_gflops = 4.0,
      .dense_gflops = 2.0,
      .memory_gbps = 2.0,
      .per_layer_overhead_ms = 2.0,
  };
}

DeviceProfile DeviceProfile::cloud_gtx1080() {
  // GTX1080: 8.9 TFLOP/s peak, ~35% sustained on conv workloads; GDDR5X
  // ~320 GB/s peak, ~60% sustained.
  return DeviceProfile{
      .name = "cloud_gtx1080",
      .conv_gflops = 3000.0,
      .dense_gflops = 1500.0,
      .memory_gbps = 190.0,
      .per_layer_overhead_ms = 0.15,
  };
}

DeviceProfile DeviceProfile::midrange_phone() {
  return DeviceProfile{
      .name = "midrange_phone",
      .conv_gflops = 12.0,
      .dense_gflops = 6.0,
      .memory_gbps = 8.0,
      .per_layer_overhead_ms = 0.05,
  };
}

}  // namespace jps::profile
