// Communication-delay regression (§6.1).
//
// The paper trains t = w0 + w1 * r with r = size/bandwidth from timed gRPC
// round trips (timer duration minus reported cloud compute time).  Here the
// training observations come from noisy Channel samples; the fitted model is
// what the scheduler consults, so estimation error propagates into partition
// decisions exactly as on the testbed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel.h"
#include "util/ols.h"
#include "util/rng.h"

namespace jps::profile {

/// One training observation: transfer size, bandwidth, measured time.
struct CommObservation {
  std::uint64_t bytes = 0;
  double bandwidth_mbps = 0.0;
  double time_ms = 0.0;
};

/// Fitted affine model of communication delay.
class CommRegression {
 public:
  CommRegression() = default;

  /// Fit w0, w1 from observations (least squares on r = bytes/bandwidth).
  /// Needs at least 2 observations with distinct r.
  static CommRegression fit(const std::vector<CommObservation>& observations);

  /// Generate `count` noisy observations of `channel` at sizes log-spaced in
  /// [min_bytes, max_bytes] and fit them. This is the harness's stand-in for
  /// the paper's timed gRPC training round trips.
  static CommRegression train_on_channel(const net::Channel& channel,
                                         std::uint64_t min_bytes,
                                         std::uint64_t max_bytes, int count,
                                         double noise_sigma, util::Rng& rng);

  /// Predicted transfer time for `bytes` at `bandwidth_mbps`.  Throws
  /// std::invalid_argument for a non-finite or non-positive bandwidth (the
  /// same validation net::Channel applies), instead of letting the division
  /// produce an inf/NaN prediction.
  [[nodiscard]] double predict_ms(std::uint64_t bytes,
                                  double bandwidth_mbps) const;

  /// w0: channel setup latency estimate (ms).
  [[nodiscard]] double w0() const { return fit_.intercept; }
  /// w1: per-unit-ratio coefficient; ~8e-3 ms per byte-per-Mbps when the link
  /// is purely serialization-limited.
  [[nodiscard]] double w1() const { return fit_.slope; }
  /// Goodness of fit on the training points.
  [[nodiscard]] double r2() const { return fit_.r2; }

 private:
  util::LinearFit fit_;
};

}  // namespace jps::profile
