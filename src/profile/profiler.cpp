#include "profile/profiler.h"

#include <stdexcept>

#include "util/stats.h"

namespace jps::profile {

Profiler::Profiler(DeviceProfile device, ProfilerOptions options)
    : model_(std::move(device)), options_(options) {
  if (options_.trials < 1) throw std::invalid_argument("Profiler: trials < 1");
  if (options_.warmup_trials < 0)
    throw std::invalid_argument("Profiler: negative warmup");
  if (options_.noise_sigma < 0.0)
    throw std::invalid_argument("Profiler: negative noise sigma");
}

ProfileRecord Profiler::measure_node(const dnn::Graph& g, dnn::NodeId id,
                                     util::Rng& rng) const {
  const double truth = model_.node_time_ms(g, id);

  // Simulate warm-up runs (discarded, but drawn so the RNG stream matches a
  // real campaign where they happen).
  for (int i = 0; i < options_.warmup_trials; ++i) {
    (void)(truth * options_.warmup_penalty *
           rng.lognormal_factor(options_.noise_sigma));
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options_.trials));
  for (int i = 0; i < options_.trials; ++i)
    samples.push_back(truth * rng.lognormal_factor(options_.noise_sigma));

  ProfileRecord rec;
  rec.node = id;
  rec.median_ms = util::median(samples);
  rec.mean_ms = util::mean(samples);
  rec.stddev_ms = util::stddev(samples);
  rec.trials = options_.trials;
  return rec;
}

std::vector<ProfileRecord> Profiler::measure_graph(const dnn::Graph& g,
                                                   util::Rng& rng) const {
  std::vector<ProfileRecord> records;
  records.reserve(g.size());
  for (dnn::NodeId id = 0; id < g.size(); ++id)
    records.push_back(measure_node(g, id, rng));
  return records;
}

}  // namespace jps::profile
