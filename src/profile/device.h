// Device performance profiles.
//
// Substitution for the paper's physical testbed (Raspberry Pi 4B client,
// i7-8700 + GTX1080 server): each device is summarized by effective
// throughputs in a roofline-style cost model.  "Effective" means sustained
// throughput through the ML framework, not peak silicon numbers — the values
// below are calibrated so absolute model latencies land in the ranges
// reported for these device classes (AlexNet ~0.3-0.5 s on a Pi 4B, a few ms
// on a GTX1080), which reproduces the paper's key premise that cloud compute
// time is negligible next to mobile compute and communication.
#pragma once

#include <string>

#include "dnn/layer.h"

namespace jps::profile {

/// Effective execution rates of one device.
struct DeviceProfile {
  std::string name;
  /// Sustained GFLOP/s on dense convolution kernels.
  double conv_gflops = 1.0;
  /// Sustained GFLOP/s on GEMM / fully-connected kernels.
  double dense_gflops = 1.0;
  /// Sustained memory bandwidth (GB/s) bounding element-wise / pooling /
  /// depthwise layers and weight streaming of large FC layers.
  double memory_gbps = 1.0;
  /// Fixed per-layer dispatch overhead (framework + kernel launch), ms.
  double per_layer_overhead_ms = 0.0;

  /// Raspberry Pi 4B class device (quad Cortex-A72, NEON fp32).
  [[nodiscard]] static DeviceProfile raspberry_pi_4b();

  /// GTX1080-class cloud server (CUDA fp32).
  [[nodiscard]] static DeviceProfile cloud_gtx1080();

  /// A mid-tier phone SoC; used by heterogeneity examples/tests only.
  [[nodiscard]] static DeviceProfile midrange_phone();
};

}  // namespace jps::profile
