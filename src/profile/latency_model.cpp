#include "profile/latency_model.h"

#include <algorithm>

namespace jps::profile {

LatencyModel::LatencyModel(DeviceProfile device) : device_(std::move(device)) {}

double LatencyModel::rate_gflops(dnn::LayerKind kind) const {
  switch (kind) {
    case dnn::LayerKind::kConv2d:
      return device_.conv_gflops;
    case dnn::LayerKind::kDense:
      return device_.dense_gflops;
    default:
      // Element-wise and pooling layers use scalar/vector paths that run at
      // GEMM-like rates; they are memory-bound in practice anyway, so the
      // roofline max() picks the bandwidth term for them.
      return device_.dense_gflops;
  }
}

double LatencyModel::node_time_ms(const dnn::Graph& g, dnn::NodeId id) const {
  const dnn::NodeInfo& info = g.info(id);
  const dnn::LayerKind kind = g.layer(id).kind();
  if (kind == dnn::LayerKind::kInput) return 0.0;

  const double compute_ms = info.flops / (rate_gflops(kind) * 1e9) * 1e3;
  const double memory_ms =
      static_cast<double>(info.memory_traffic) / (device_.memory_gbps * 1e9) * 1e3;
  return device_.per_layer_overhead_ms + std::max(compute_ms, memory_ms);
}

double LatencyModel::graph_time_ms(const dnn::Graph& g) const {
  double total = 0.0;
  for (dnn::NodeId id = 0; id < g.size(); ++id) total += node_time_ms(g, id);
  return total;
}

}  // namespace jps::profile
