// A small discrete-event simulator: exclusive FIFO resources executing a
// task DAG.  This is the executable stand-in for the paper's testbed — the
// mobile CPU, the uplink and the cloud GPU become three resources, every
// layer execution and tensor transfer becomes a task, and the engine
// computes when everything actually runs.
//
// Scheduling policy: non-preemptive; a free resource starts the READY task
// with the lowest (priority, submission index) pair.  The default priority
// is the submission index, so submitting all of job i's tasks before job
// i+1's reproduces the paper's model where a job's stage, once started,
// holds the whole resource.  Explicit priorities let late-submitted tasks
// (retries, fallback work injected by a finish hook) keep their job's
// place in the queue.
//
// Fault-aware extensions (all opt-in; the fixed-duration API is unchanged):
//   * dynamic tasks resolve their duration when they START, so transfer
//     times can depend on a time-varying channel and compute times on
//     throttle windows;
//   * a release time holds a task until a wall-clock instant even when its
//     dependencies are met (retry backoff);
//   * a finish hook runs after every task completion and may submit new
//     tasks mid-run (retries, local fallback, lazily materialized stages).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <string>
#include <vector>

namespace jps::sim {

using ResourceId = std::size_t;
using TaskId = std::size_t;

/// Duration of a dynamic task, resolved at its start time.
using DurationFn = std::function<double(double start_ms)>;

/// Callback invoked after each task completes (the task is already marked
/// finished; dependents have been notified).  May call add_task /
/// add_dynamic_task to extend the simulation.
using FinishHook = std::function<void(TaskId id, double now_ms)>;

/// Execution record of one task, filled by run().
struct TaskRecord {
  ResourceId resource = 0;
  double duration = 0.0;
  double start = -1.0;
  double end = -1.0;
  std::string tag;
};

class EventSimulator {
 public:
  /// Register an exclusive resource.
  ResourceId add_resource(std::string name);

  /// Register a task of `duration` ms on `resource` that may start only
  /// after every task in `deps` has finished.  Dependencies must refer to
  /// already-registered tasks.  `tag` is free-form for traces.  `priority`
  /// orders ready tasks on a resource (lower first; ties by submission
  /// index); the default kAutoPriority uses the submission index itself.
  TaskId add_task(ResourceId resource, double duration,
                  const std::vector<TaskId>& deps, std::string tag = {},
                  std::uint64_t priority = kAutoPriority);

  /// Register a task whose duration is resolved when it starts and that is
  /// additionally held until `release_ms`.  The callback must return a
  /// non-negative duration.
  TaskId add_dynamic_task(ResourceId resource, DurationFn duration,
                          const std::vector<TaskId>& deps, std::string tag = {},
                          double release_ms = 0.0,
                          std::uint64_t priority = kAutoPriority);

  /// Install the completion callback (replaces any previous hook).
  void set_finish_hook(FinishHook hook) { finish_hook_ = std::move(hook); }

  /// Execute all tasks. Throws std::logic_error if any task can never start
  /// (dependency cycle is impossible by construction, but an unregistered
  /// resource is caught).  Idempotent per instance — call once.
  void run();

  /// Record of a task after run().
  [[nodiscard]] const TaskRecord& record(TaskId id) const;

  /// Time the last task finishes (0 for an empty simulation).
  [[nodiscard]] double makespan() const { return makespan_; }

  /// Total busy time of a resource.
  [[nodiscard]] double busy_time(ResourceId id) const;

  /// Resource display name.
  [[nodiscard]] const std::string& resource_name(ResourceId id) const;

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t resource_count() const { return resources_.size(); }

  /// Sentinel: use the submission index as the priority.
  static constexpr std::uint64_t kAutoPriority =
      static_cast<std::uint64_t>(-1);

 private:
  struct Task {
    TaskRecord record;
    std::vector<TaskId> dependents;
    std::size_t unmet_deps = 0;
    DurationFn duration_fn;  // empty -> fixed record.duration
    double release_ms = 0.0;
    std::uint64_t priority = 0;
    bool finished = false;
  };
  struct Resource {
    std::string name;
    double busy = 0.0;
  };

  TaskId add_task_impl(ResourceId resource, double duration,
                       DurationFn duration_fn, const std::vector<TaskId>& deps,
                       std::string tag, double release_ms,
                       std::uint64_t priority);
  void make_ready(TaskId id);
  void try_start(ResourceId r);

  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
  FinishHook finish_hook_;
  double makespan_ = 0.0;
  bool ran_ = false;

  // Live run state (valid only inside run(); members so the finish hook's
  // add_task calls can join the in-flight simulation).
  // Ready sets are ordered by (priority, submission index).
  std::vector<std::set<std::pair<std::uint64_t, TaskId>>> ready_;
  std::vector<bool> resource_busy_;
  // Events: (time, kind, task).  kind 0 = completion, 1 = release; at equal
  // times completions are processed first and ties break on task index for
  // determinism.
  using Event = std::tuple<double, int, TaskId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  std::size_t remaining_ = 0;
  bool running_ = false;
};

}  // namespace jps::sim
