// A small discrete-event simulator: exclusive FIFO resources executing a
// task DAG.  This is the executable stand-in for the paper's testbed — the
// mobile CPU, the uplink and the cloud GPU become three resources, every
// layer execution and tensor transfer becomes a task, and the engine
// computes when everything actually runs.
//
// Scheduling policy: non-preemptive; a free resource starts the READY task
// with the lowest submission index.  Submitting all of job i's tasks before
// job i+1's therefore reproduces the paper's model where a job's stage,
// once started, holds the whole resource.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace jps::sim {

using ResourceId = std::size_t;
using TaskId = std::size_t;

/// Execution record of one task, filled by run().
struct TaskRecord {
  ResourceId resource = 0;
  double duration = 0.0;
  double start = -1.0;
  double end = -1.0;
  std::string tag;
};

class EventSimulator {
 public:
  /// Register an exclusive resource.
  ResourceId add_resource(std::string name);

  /// Register a task of `duration` ms on `resource` that may start only
  /// after every task in `deps` has finished.  Dependencies must refer to
  /// already-registered tasks.  `tag` is free-form for traces.
  TaskId add_task(ResourceId resource, double duration,
                  const std::vector<TaskId>& deps, std::string tag = {});

  /// Execute all tasks. Throws std::logic_error if any task can never start
  /// (dependency cycle is impossible by construction, but an unregistered
  /// resource is caught).  Idempotent per instance — call once.
  void run();

  /// Record of a task after run().
  [[nodiscard]] const TaskRecord& record(TaskId id) const;

  /// Time the last task finishes (0 for an empty simulation).
  [[nodiscard]] double makespan() const { return makespan_; }

  /// Total busy time of a resource.
  [[nodiscard]] double busy_time(ResourceId id) const;

  /// Resource display name.
  [[nodiscard]] const std::string& resource_name(ResourceId id) const;

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t resource_count() const { return resources_.size(); }

 private:
  struct Task {
    TaskRecord record;
    std::vector<TaskId> dependents;
    std::size_t unmet_deps = 0;
  };
  struct Resource {
    std::string name;
    double busy = 0.0;
  };

  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
  double makespan_ = 0.0;
  bool ran_ = false;
};

}  // namespace jps::sim
