#include "sim/executor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/event_sim.h"
#include "sim/executor_detail.h"

namespace jps::sim {

namespace detail {

// Submit every task of one job (mobile layers -> transfer -> cloud layers)
// to the simulator.  Submission order across jobs gives the FIFO priority.
JobTasks submit_job(EventSimulator& sim, const Resources& resources,
                    const dnn::Graph& graph, const partition::CutPoint& cut,
                    std::size_t job_tag, const profile::LatencyModel& mobile,
                    const profile::LatencyModel& cloud,
                    const net::Channel& channel, const SimOptions& options,
                    util::Rng& rng) {
  JobTasks tasks;
  std::vector<TaskId> node_task(graph.size(), kNoTask);
  std::vector<char> is_local(graph.size(), 0);
  for (const dnn::NodeId v : cut.local_nodes) is_local[v] = 1;

  // Mobile stage, layer by layer in topological order.
  for (const dnn::NodeId v : cut.local_nodes) {
    std::vector<TaskId> deps;
    for (const dnn::NodeId p : graph.predecessors(v)) {
      if (node_task[p] != kNoTask) deps.push_back(node_task[p]);
    }
    const double duration = mobile.node_time_ms(graph, v) *
                            rng.lognormal_factor(options.comp_noise_sigma);
    node_task[v] = sim.add_task(resources.mobile, duration, deps,
                                "j" + std::to_string(job_tag) + ":m:" +
                                    std::to_string(v));
    tasks.local.push_back(node_task[v]);
  }

  // Offload stage: one message carrying every cut tensor.
  if (cut.offload_bytes > 0) {
    std::vector<TaskId> deps;
    for (const dnn::NodeId v : cut.cut_nodes) deps.push_back(node_task[v]);
    const double duration = channel.time_ms(cut.offload_bytes) *
                            rng.lognormal_factor(options.comm_noise_sigma);
    tasks.transfer = sim.add_task(resources.link, duration, deps,
                                  "j" + std::to_string(job_tag) + ":tx");
  }

  // Cloud stage: the remaining layers; locally produced inputs arrive via
  // the transfer.
  if (options.include_cloud && tasks.transfer != kNoTask) {
    for (dnn::NodeId v = 0; v < graph.size(); ++v) {
      if (is_local[v]) continue;
      std::vector<TaskId> deps;
      bool needs_transfer = false;
      for (const dnn::NodeId p : graph.predecessors(v)) {
        if (is_local[p]) {
          needs_transfer = true;
        } else if (node_task[p] != kNoTask) {
          deps.push_back(node_task[p]);
        }
      }
      if (needs_transfer) deps.push_back(tasks.transfer);
      const double duration = cloud.node_time_ms(graph, v) *
                              rng.lognormal_factor(options.comp_noise_sigma);
      node_task[v] = sim.add_task(resources.cloud, duration, deps,
                                  "j" + std::to_string(job_tag) + ":c:" +
                                      std::to_string(v));
      tasks.remote.push_back(node_task[v]);
    }
  }
  return tasks;
}

SimJobResult collect(const EventSimulator& sim, const JobTasks& tasks,
                     int job_id, std::size_t cut_index) {
  SimJobResult r;
  r.job_id = job_id;
  r.cut_index = cut_index;
  if (!tasks.local.empty()) {
    r.has_comp = true;
    r.comp_start = sim.record(tasks.local.front()).start;
    r.comp_end = sim.record(tasks.local.front()).end;
    for (const TaskId t : tasks.local)
      r.comp_end = std::max(r.comp_end, sim.record(t).end);
  }
  if (tasks.transfer != kNoTask) {
    r.has_comm = true;
    r.comm_start = sim.record(tasks.transfer).start;
    r.comm_end = sim.record(tasks.transfer).end;
  }
  for (const TaskId t : tasks.remote) {
    if (!r.has_cloud) {
      r.has_cloud = true;
      r.cloud_start = sim.record(t).start;
      r.cloud_end = sim.record(t).end;
    }
    r.cloud_end = std::max(r.cloud_end, sim.record(t).end);
  }
  return r;
}

}  // namespace detail

namespace {

using detail::collect;
using detail::JobTasks;
using detail::kNoTask;
using detail::Resources;
using detail::submit_job;

SimResult run_jobs(const std::vector<MixedJob>& jobs,
                   const profile::LatencyModel& mobile,
                   const profile::LatencyModel& cloud,
                   const net::Channel& channel, const SimOptions& options,
                   util::Rng& rng, EventSimulator* capture) {
  static obs::Counter& runs = obs::counter("sim.runs");
  static obs::Counter& sim_jobs = obs::counter("sim.jobs");
  runs.add();
  sim_jobs.add(jobs.size());
  obs::Span span("sim.run", "sim");
  span.arg("jobs", std::to_string(jobs.size()));
  EventSimulator sim;
  const Resources resources{sim.add_resource("mobile_cpu"),
                            sim.add_resource("uplink"),
                            sim.add_resource("cloud_gpu")};

  std::vector<JobTasks> job_tasks;
  job_tasks.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const MixedJob& job = jobs[j];
    if (job.graph == nullptr || job.curve == nullptr)
      throw std::invalid_argument("simulate: null graph/curve");
    job_tasks.push_back(submit_job(sim, resources, *job.graph,
                                   job.curve->cut(job.cut_index), j, mobile,
                                   cloud, channel, options, rng));
  }
  sim.run();

  // Distributions of the quantities the paper's evaluation reports
  // (Figs. 12-14): per-stage busy intervals of each job, per-job
  // completion, and the plan makespan.
  static obs::Histogram& makespan_hist = obs::histogram("sim.makespan_ms");
  static obs::Histogram& mobile_hist = obs::histogram("sim.stage_mobile_ms");
  static obs::Histogram& uplink_hist = obs::histogram("sim.stage_uplink_ms");
  static obs::Histogram& cloud_hist = obs::histogram("sim.stage_cloud_ms");
  static obs::Histogram& completion_hist =
      obs::histogram("sim.job_completion_ms");

  SimResult result;
  result.jobs.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.jobs.push_back(
        collect(sim, job_tasks[j], jobs[j].job_id, jobs[j].cut_index));
    const SimJobResult& job = result.jobs.back();
    if (job.has_comp) mobile_hist.record(job.comp_end - job.comp_start);
    if (job.has_comm) uplink_hist.record(job.comm_end - job.comm_start);
    if (job.has_cloud) cloud_hist.record(job.cloud_end - job.cloud_start);
    completion_hist.record(job.completion());
  }
  result.makespan = sim.makespan();
  makespan_hist.record(result.makespan);
  if (result.makespan > 0.0) {
    result.mobile_utilization = sim.busy_time(resources.mobile) / result.makespan;
    result.link_utilization = sim.busy_time(resources.link) / result.makespan;
    result.cloud_utilization = sim.busy_time(resources.cloud) / result.makespan;
  }
  span.arg("tasks", std::to_string(sim.task_count()));
  span.arg("makespan_ms", result.makespan);
  if (capture != nullptr) *capture = std::move(sim);
  return result;
}

}  // namespace

SimResult simulate_plan(const dnn::Graph& graph,
                        const partition::ProfileCurve& curve,
                        const core::ExecutionPlan& plan,
                        const profile::LatencyModel& mobile,
                        const profile::LatencyModel& cloud,
                        const net::Channel& channel, const SimOptions& options,
                        util::Rng& rng, EventSimulator* capture) {
  std::vector<MixedJob> jobs;
  jobs.reserve(plan.jobs.size());
  for (const core::JobAssignment& assignment : plan.jobs) {
    jobs.push_back(MixedJob{&graph, &curve, assignment.cut_index,
                            assignment.job_id});
  }
  return run_jobs(jobs, mobile, cloud, channel, options, rng, capture);
}

SimResult simulate_mixed_plan(const std::vector<MixedJob>& jobs,
                              const profile::LatencyModel& mobile,
                              const profile::LatencyModel& cloud,
                              const net::Channel& channel,
                              const SimOptions& options, util::Rng& rng,
                              EventSimulator* capture) {
  return run_jobs(jobs, mobile, cloud, channel, options, rng, capture);
}

}  // namespace jps::sim
