// Execute an ExecutionPlan on the simulated testbed at per-layer
// granularity, with optional measurement noise — the end-to-end validation
// that the planner's predicted makespans correspond to what a real pipeline
// would do (and the source of the "measured" columns in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "dnn/graph.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "util/rng.h"

namespace jps::sim {

class EventSimulator;  // sim/event_sim.h

/// Noise and fidelity knobs for one simulated run.
struct SimOptions {
  /// Log-normal sigma on every layer execution (both devices).
  double comp_noise_sigma = 0.0;
  /// Log-normal sigma on every transfer.
  double comm_noise_sigma = 0.0;
  /// Model the cloud stage (3-stage pipeline). Off = ideal 2-stage pipe.
  bool include_cloud = true;
};

/// Timeline of one simulated job.
struct SimJobResult {
  int job_id = 0;
  std::size_t cut_index = 0;
  double comp_start = 0.0;
  double comp_end = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double cloud_start = 0.0;
  double cloud_end = 0.0;

  [[nodiscard]] double completion() const {
    return cloud_end > 0.0 ? cloud_end : (comm_end > 0.0 ? comm_end : comp_end);
  }
};

/// Aggregate of one simulated plan execution.
struct SimResult {
  std::vector<SimJobResult> jobs;  // in plan (processing) order
  double makespan = 0.0;
  /// Busy fractions of each resource over the makespan, in [0, 1].
  double mobile_utilization = 0.0;
  double link_utilization = 0.0;
  double cloud_utilization = 0.0;
};

/// Simulate `plan` for the jobs of `graph`.  `curve` must be the curve the
/// plan was made from (it holds the per-cut local node sets).  Layer times
/// come from the latency models; transfer times from the channel; noise and
/// cloud fidelity from `options`.  When `capture` is non-null the finished
/// discrete-event engine (per-task records included) is moved into it —
/// feed it to sim::append_chrome_trace for a browsable timeline.
[[nodiscard]] SimResult simulate_plan(const dnn::Graph& graph,
                                      const partition::ProfileCurve& curve,
                                      const core::ExecutionPlan& plan,
                                      const profile::LatencyModel& mobile,
                                      const profile::LatencyModel& cloud,
                                      const net::Channel& channel,
                                      const SimOptions& options,
                                      util::Rng& rng,
                                      EventSimulator* capture = nullptr);

/// One job of a mixed (multi-model) workload, in processing order.
struct MixedJob {
  const dnn::Graph* graph = nullptr;
  const partition::ProfileCurve* curve = nullptr;
  std::size_t cut_index = 0;
  int job_id = 0;
};

/// Simulate a heterogeneous job sequence (e.g. a core::HeteroPlan): each
/// job runs its own model partitioned at its own cut, sharing the mobile
/// CPU, uplink and cloud GPU resources in the given order.
[[nodiscard]] SimResult simulate_mixed_plan(const std::vector<MixedJob>& jobs,
                                            const profile::LatencyModel& mobile,
                                            const profile::LatencyModel& cloud,
                                            const net::Channel& channel,
                                            const SimOptions& options,
                                            util::Rng& rng,
                                            EventSimulator* capture = nullptr);

}  // namespace jps::sim
