// Execute an ExecutionPlan on the simulated testbed at per-layer
// granularity, with optional measurement noise — the end-to-end validation
// that the planner's predicted makespans correspond to what a real pipeline
// would do (and the source of the "measured" columns in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/plan.h"
#include "dnn/graph.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "util/rng.h"

namespace jps::sim {

class EventSimulator;  // sim/event_sim.h

/// Noise and fidelity knobs for one simulated run.
struct SimOptions {
  /// Log-normal sigma on every layer execution (both devices).
  double comp_noise_sigma = 0.0;
  /// Log-normal sigma on every transfer.
  double comm_noise_sigma = 0.0;
  /// Model the cloud stage (3-stage pipeline). Off = ideal 2-stage pipe.
  bool include_cloud = true;
};

/// Timeline of one simulated job.  The has_* flags say which stages exist:
/// a zero-duration stage ending at t=0 is a real stage (flag set), whereas
/// an absent stage (e.g. no transfer for a local-only cut) leaves its flag
/// false and its times meaningless.
struct SimJobResult {
  int job_id = 0;
  std::size_t cut_index = 0;
  double comp_start = 0.0;
  double comp_end = 0.0;
  double comm_start = 0.0;
  double comm_end = 0.0;
  double cloud_start = 0.0;
  double cloud_end = 0.0;
  bool has_comp = false;
  bool has_comm = false;
  bool has_cloud = false;
  /// Fault-aware runs only: transfer retries this job needed, and whether
  /// it exhausted its retry budget and finished on the mobile device (its
  /// fallback execution is folded into comp_end).
  int retries = 0;
  bool fell_back = false;

  /// Completion time: the latest end among the stages that exist.  (With
  /// local fallback the mobile stage can end after the failed transfer, so
  /// this is a max, not a fixed stage order.)
  [[nodiscard]] double completion() const {
    double done = has_comp ? comp_end : 0.0;
    if (has_comm && comm_end > done) done = comm_end;
    if (has_cloud && cloud_end > done) done = cloud_end;
    return done;
  }
};

/// Aggregate of one simulated plan execution.
struct SimResult {
  std::vector<SimJobResult> jobs;  // in plan (processing) order
  double makespan = 0.0;
  /// Busy fractions of each resource over the makespan, in [0, 1].
  double mobile_utilization = 0.0;
  double link_utilization = 0.0;
  double cloud_utilization = 0.0;
};

/// Simulate `plan` for the jobs of `graph`.  `curve` must be the curve the
/// plan was made from (it holds the per-cut local node sets).  Layer times
/// come from the latency models; transfer times from the channel; noise and
/// cloud fidelity from `options`.  When `capture` is non-null the finished
/// discrete-event engine (per-task records included) is moved into it —
/// feed it to sim::append_chrome_trace for a browsable timeline.
[[nodiscard]] SimResult simulate_plan(const dnn::Graph& graph,
                                      const partition::ProfileCurve& curve,
                                      const core::ExecutionPlan& plan,
                                      const profile::LatencyModel& mobile,
                                      const profile::LatencyModel& cloud,
                                      const net::Channel& channel,
                                      const SimOptions& options,
                                      util::Rng& rng,
                                      EventSimulator* capture = nullptr);

/// One job of a mixed (multi-model) workload, in processing order.
struct MixedJob {
  const dnn::Graph* graph = nullptr;
  const partition::ProfileCurve* curve = nullptr;
  std::size_t cut_index = 0;
  int job_id = 0;
};

/// Simulate a heterogeneous job sequence (e.g. a core::HeteroPlan): each
/// job runs its own model partitioned at its own cut, sharing the mobile
/// CPU, uplink and cloud GPU resources in the given order.
[[nodiscard]] SimResult simulate_mixed_plan(const std::vector<MixedJob>& jobs,
                                            const profile::LatencyModel& mobile,
                                            const profile::LatencyModel& cloud,
                                            const net::Channel& channel,
                                            const SimOptions& options,
                                            util::Rng& rng,
                                            EventSimulator* capture = nullptr);

}  // namespace jps::sim
