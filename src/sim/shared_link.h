// Multi-device deployments: M mobile devices offloading through ONE shared
// uplink to one cloud server.
//
// The paper plans for a single device; with contention the effective
// bandwidth each device sees depends on everyone else's plan.  This module
// evaluates two planning policies end-to-end:
//   * kFullBandwidth — every device plans as if it owned the link (the
//     naive reuse of the single-device planner);
//   * kFairShare    — every device plans against bandwidth/M, anticipating
//     contention (which pushes its cuts deeper / more local).
// Either way the SIMULATION is the ground truth: one exclusive link serves
// all transfers at full rate, FIFO.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/plan.h"
#include "core/planner.h"
#include "sim/executor.h"

namespace jps::sim {

/// One mobile device and its workload.
struct SharedDevice {
  std::string name;
  const dnn::Graph* graph = nullptr;
  profile::LatencyModel mobile;
  int jobs = 0;
};

/// How each device's planner models the shared link.
enum class SharePolicy {
  kFullBandwidth,
  kFairShare,
};

/// Outcome of planning + executing a multi-device deployment.
struct SharedLinkResult {
  /// Global makespan across all devices, ms.
  double makespan = 0.0;
  /// Completion time of each device's last job, ms (device order).
  std::vector<double> device_makespans;
  /// Shared-uplink busy fraction.
  double link_utilization = 0.0;
  /// The per-device plans that were executed.
  std::vector<core::ExecutionPlan> plans;
};

/// Plan every device with `strategy` under `policy`, then execute all
/// devices against the real shared link (one CPU resource per device, one link,
/// one cloud GPU; jobs interleaved round-robin across devices).
/// Throws std::invalid_argument on empty input or null graphs.
[[nodiscard]] SharedLinkResult plan_and_simulate_shared(
    std::span<const SharedDevice> devices, const net::Channel& link,
    core::Strategy strategy, SharePolicy policy,
    const profile::LatencyModel& cloud, const SimOptions& options,
    util::Rng& rng);

}  // namespace jps::sim
