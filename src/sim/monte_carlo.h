// Monte-Carlo plan evaluation: execute the same plan many times under
// measurement noise and report the makespan distribution.  Used for tail
// latency analysis (p95/p99 response matters more than the mean for the
// AR/self-driving workloads of §1).
#pragma once

#include <cstddef>

#include "sim/executor.h"
#include "util/stats.h"

namespace jps::sim {

/// Settings of a Monte-Carlo campaign.
struct MonteCarloOptions {
  int trials = 101;
  /// Per-layer and per-transfer log-normal noise.
  double comp_noise_sigma = 0.10;
  double comm_noise_sigma = 0.10;
  bool include_cloud = true;
  std::uint64_t seed = 1;
  /// Concurrency cap for the campaign (0 = the library default: JPS_THREADS
  /// or hardware_concurrency).  Every trial draws from its own seeded RNG
  /// stream, so summaries are bit-identical for any thread count.
  std::size_t threads = 0;
};

/// Run `plan` `trials` times with independent noise draws and summarize the
/// resulting makespans.  Trials are spread across the shared worker pool.
[[nodiscard]] util::Summary monte_carlo_makespan(
    const dnn::Graph& graph, const partition::ProfileCurve& curve,
    const core::ExecutionPlan& plan, const profile::LatencyModel& mobile,
    const profile::LatencyModel& cloud, const net::Channel& channel,
    const MonteCarloOptions& options);

}  // namespace jps::sim
