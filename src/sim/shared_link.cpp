#include "sim/shared_link.h"

#include <algorithm>
#include <stdexcept>

#include "partition/profile_curve.h"
#include "sim/event_sim.h"
#include "sim/executor_detail.h"

namespace jps::sim {

SharedLinkResult plan_and_simulate_shared(std::span<const SharedDevice> devices,
                                          const net::Channel& link,
                                          core::Strategy strategy,
                                          SharePolicy policy,
                                          const profile::LatencyModel& cloud,
                                          const SimOptions& options,
                                          util::Rng& rng) {
  if (devices.empty())
    throw std::invalid_argument("plan_and_simulate_shared: no devices");
  for (const SharedDevice& device : devices) {
    if (device.graph == nullptr)
      throw std::invalid_argument("plan_and_simulate_shared: null graph");
    if (device.jobs < 1)
      throw std::invalid_argument("plan_and_simulate_shared: jobs < 1");
  }

  // 1. Plan each device under its policy's view of the link.
  const double planning_mbps =
      policy == SharePolicy::kFairShare
          ? link.bandwidth_mbps() / static_cast<double>(devices.size())
          : link.bandwidth_mbps();
  const net::Channel planning_link = link.with_bandwidth(planning_mbps);

  SharedLinkResult result;
  std::vector<partition::ProfileCurve> curves;
  curves.reserve(devices.size());
  for (const SharedDevice& device : devices) {
    curves.push_back(partition::ProfileCurve::build(*device.graph,
                                                    device.mobile,
                                                    planning_link));
    const core::Planner planner(curves.back());
    result.plans.push_back(planner.plan(strategy, device.jobs));
  }

  // 2. Execute everything against the REAL link: one CPU per device, one
  // shared uplink, one cloud GPU.  Jobs are submitted round-robin across
  // devices so FIFO link arbitration interleaves them fairly.
  EventSimulator sim;
  std::vector<detail::Resources> device_resources;
  const ResourceId r_link = sim.add_resource("uplink");
  const ResourceId r_cloud = sim.add_resource("cloud_gpu");
  for (const SharedDevice& device : devices) {
    device_resources.push_back(detail::Resources{
        sim.add_resource("cpu:" + device.name), r_link, r_cloud});
  }

  std::size_t max_jobs = 0;
  for (const auto& plan : result.plans)
    max_jobs = std::max(max_jobs, plan.jobs.size());

  // Per device, per job-position: the submitted task handles.
  std::vector<std::vector<detail::JobTasks>> tasks(devices.size());
  std::size_t tag = 0;
  for (std::size_t position = 0; position < max_jobs; ++position) {
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const core::ExecutionPlan& plan = result.plans[d];
      if (position >= plan.jobs.size()) continue;
      const partition::CutPoint& cut =
          curves[d].cut(plan.jobs[position].cut_index);
      tasks[d].push_back(detail::submit_job(
          sim, device_resources[d], *devices[d].graph, cut, tag++,
          devices[d].mobile, cloud, link, options, rng));
    }
  }
  sim.run();

  result.makespan = sim.makespan();
  result.device_makespans.resize(devices.size(), 0.0);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (std::size_t j = 0; j < tasks[d].size(); ++j) {
      const SimJobResult job = detail::collect(
          sim, tasks[d][j], static_cast<int>(j),
          result.plans[d].jobs[j].cut_index);
      result.device_makespans[d] =
          std::max(result.device_makespans[d], job.completion());
    }
  }
  if (result.makespan > 0.0)
    result.link_utilization = sim.busy_time(r_link) / result.makespan;
  return result;
}

}  // namespace jps::sim
