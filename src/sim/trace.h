// Renderings of simulated timelines: ASCII Gantt, CSV, and Chrome
// trace-event JSON (via obs::TraceWriter) so any simulated plan opens in
// about:tracing / Perfetto.
#pragma once

#include <string>

#include "obs/trace_writer.h"
#include "sim/event_sim.h"
#include "sim/executor.h"

namespace jps::sim {

/// Render per-job stage bars (mobile compute / uplink / cloud) as an ASCII
/// Gantt chart of `width` characters across the makespan.
[[nodiscard]] std::string ascii_gantt(const SimResult& result, int width = 100);

/// CSV rendering: one row per job with all stage start/end times.
[[nodiscard]] std::string timeline_csv(const SimResult& result);

/// Append every task record of a finished EventSimulator to `writer`:
/// one thread track per resource (tid = ResourceId, named after the
/// resource), one complete event per executed task (name = tag).
void append_chrome_trace(const EventSimulator& sim, obs::TraceWriter& writer,
                         int pid = 1);

/// Append a SimResult's per-job stage intervals to `writer`: three tracks
/// (mobile compute / uplink / cloud compute) with one event per nonempty
/// stage.  Coarser than the EventSimulator rendering (stages, not layers)
/// but available wherever only the aggregate survives.
void append_chrome_trace(const SimResult& result, obs::TraceWriter& writer,
                         int pid = 1);

}  // namespace jps::sim
