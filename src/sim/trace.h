// Human-readable renderings of simulated timelines.
#pragma once

#include <string>

#include "sim/executor.h"

namespace jps::sim {

/// Render per-job stage bars (mobile compute / uplink / cloud) as an ASCII
/// Gantt chart of `width` characters across the makespan.
[[nodiscard]] std::string ascii_gantt(const SimResult& result, int width = 100);

/// CSV rendering: one row per job with all stage start/end times.
[[nodiscard]] std::string timeline_csv(const SimResult& result);

}  // namespace jps::sim
