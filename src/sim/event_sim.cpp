#include "sim/event_sim.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jps::sim {

ResourceId EventSimulator::add_resource(std::string name) {
  if (running_)
    throw std::logic_error("EventSimulator::add_resource: mid-run");
  resources_.push_back(Resource{std::move(name), 0.0});
  return resources_.size() - 1;
}

TaskId EventSimulator::add_task(ResourceId resource, double duration,
                                const std::vector<TaskId>& deps,
                                std::string tag, std::uint64_t priority) {
  if (duration < 0.0)
    throw std::invalid_argument("EventSimulator::add_task: negative duration");
  return add_task_impl(resource, duration, {}, deps, std::move(tag), 0.0,
                       priority);
}

TaskId EventSimulator::add_dynamic_task(ResourceId resource,
                                        DurationFn duration,
                                        const std::vector<TaskId>& deps,
                                        std::string tag, double release_ms,
                                        std::uint64_t priority) {
  if (!duration)
    throw std::invalid_argument("EventSimulator::add_dynamic_task: no callback");
  if (release_ms < 0.0)
    throw std::invalid_argument(
        "EventSimulator::add_dynamic_task: negative release");
  return add_task_impl(resource, 0.0, std::move(duration), deps,
                       std::move(tag), release_ms, priority);
}

TaskId EventSimulator::add_task_impl(ResourceId resource, double duration,
                                     DurationFn duration_fn,
                                     const std::vector<TaskId>& deps,
                                     std::string tag, double release_ms,
                                     std::uint64_t priority) {
  if (resource >= resources_.size())
    throw std::invalid_argument("EventSimulator::add_task: bad resource");
  const TaskId id = tasks_.size();
  // Validate everything before mutating any state, so a failed add leaves
  // the simulator usable.
  for (const TaskId dep : deps) {
    if (dep >= id)
      throw std::invalid_argument("EventSimulator::add_task: bad dependency");
  }
  Task task;
  task.record.resource = resource;
  task.record.duration = duration;
  task.record.tag = std::move(tag);
  task.duration_fn = std::move(duration_fn);
  task.release_ms = release_ms;
  task.priority = priority == kAutoPriority ? id : priority;
  // Mid-run adds may depend on work that already finished.
  for (const TaskId dep : deps) {
    if (!tasks_[dep].finished) ++task.unmet_deps;
  }
  const std::size_t unmet = task.unmet_deps;
  tasks_.push_back(std::move(task));
  for (const TaskId dep : deps) {
    if (!tasks_[dep].finished) tasks_[dep].dependents.push_back(id);
  }
  if (running_) {
    ++remaining_;
    if (unmet == 0) make_ready(id);
  }
  return id;
}

// All dependencies met: queue on the resource now, or schedule the release
// event if the task is still held back.
void EventSimulator::make_ready(TaskId id) {
  Task& task = tasks_[id];
  if (task.release_ms > now_) {
    events_.emplace(task.release_ms, 1, id);
  } else {
    ready_[task.record.resource].emplace(task.priority, id);
  }
}

void EventSimulator::try_start(ResourceId r) {
  if (resource_busy_[r] || ready_[r].empty()) return;
  const TaskId id = ready_[r].begin()->second;
  ready_[r].erase(ready_[r].begin());
  Task& task = tasks_[id];
  if (task.duration_fn) {
    const double duration = task.duration_fn(now_);
    if (!(duration >= 0.0))
      throw std::logic_error(
          "EventSimulator: dynamic duration must be non-negative");
    task.record.duration = duration;
  }
  task.record.start = now_;
  task.record.end = now_ + task.record.duration;
  resources_[r].busy += task.record.duration;
  resource_busy_[r] = true;
  events_.emplace(task.record.end, 0, id);
}

void EventSimulator::run() {
  if (ran_) throw std::logic_error("EventSimulator::run: already ran");
  ran_ = true;
  running_ = true;

  ready_.assign(resources_.size(), {});
  resource_busy_.assign(resources_.size(), false);
  now_ = 0.0;
  remaining_ = tasks_.size();
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0) make_ready(id);
  }

  for (ResourceId r = 0; r < resources_.size(); ++r) try_start(r);

  while (!events_.empty()) {
    const auto [time, kind, id] = events_.top();
    events_.pop();
    now_ = time;

    if (kind == 1) {
      // Release: the task's dependencies were met earlier; it now joins the
      // resource queue.
      ready_[tasks_[id].record.resource].emplace(tasks_[id].priority, id);
    } else {
      makespan_ = std::max(makespan_, now_);
      --remaining_;
      tasks_[id].finished = true;
      resource_busy_[tasks_[id].record.resource] = false;
      // Index-based loop: the finish hook below may reallocate tasks_.
      for (std::size_t d = 0; d < tasks_[id].dependents.size(); ++d) {
        const TaskId dep = tasks_[id].dependents[d];
        if (--tasks_[dep].unmet_deps == 0) make_ready(dep);
      }
      if (finish_hook_) finish_hook_(id, now_);
    }
    // The freed resource and any resource that just gained a ready task may
    // start work at `now`.
    for (ResourceId r = 0; r < resources_.size(); ++r) try_start(r);
  }
  running_ = false;

  if (remaining_ != 0)
    throw std::logic_error("EventSimulator::run: tasks never became ready");
}

const TaskRecord& EventSimulator::record(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("EventSimulator::record");
  return tasks_[id].record;
}

double EventSimulator::busy_time(ResourceId id) const {
  if (id >= resources_.size())
    throw std::out_of_range("EventSimulator::busy_time");
  return resources_[id].busy;
}

const std::string& EventSimulator::resource_name(ResourceId id) const {
  if (id >= resources_.size())
    throw std::out_of_range("EventSimulator::resource_name");
  return resources_[id].name;
}

}  // namespace jps::sim
