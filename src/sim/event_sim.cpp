#include "sim/event_sim.h"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace jps::sim {

ResourceId EventSimulator::add_resource(std::string name) {
  resources_.push_back(Resource{std::move(name), 0.0});
  return resources_.size() - 1;
}

TaskId EventSimulator::add_task(ResourceId resource, double duration,
                                const std::vector<TaskId>& deps,
                                std::string tag) {
  if (resource >= resources_.size())
    throw std::invalid_argument("EventSimulator::add_task: bad resource");
  if (duration < 0.0)
    throw std::invalid_argument("EventSimulator::add_task: negative duration");
  const TaskId id = tasks_.size();
  // Validate everything before mutating any state, so a failed add leaves
  // the simulator usable.
  for (const TaskId dep : deps) {
    if (dep >= id)
      throw std::invalid_argument("EventSimulator::add_task: bad dependency");
  }
  Task task;
  task.record.resource = resource;
  task.record.duration = duration;
  task.record.tag = std::move(tag);
  task.unmet_deps = deps.size();
  tasks_.push_back(std::move(task));
  for (const TaskId dep : deps) tasks_[dep].dependents.push_back(id);
  return id;
}

void EventSimulator::run() {
  if (ran_) throw std::logic_error("EventSimulator::run: already ran");
  ran_ = true;

  // Per-resource ready sets ordered by submission index (FIFO by plan order).
  std::vector<std::set<TaskId>> ready(resources_.size());
  std::vector<bool> resource_busy(resources_.size(), false);

  // Completion events: (time, task). Ties resolved by task index for
  // determinism.
  using Event = std::pair<double, TaskId>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  std::size_t remaining = tasks_.size();
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0)
      ready[tasks_[id].record.resource].insert(id);
  }

  double now = 0.0;
  auto try_start = [&](ResourceId r) {
    if (resource_busy[r] || ready[r].empty()) return;
    const TaskId id = *ready[r].begin();
    ready[r].erase(ready[r].begin());
    Task& task = tasks_[id];
    task.record.start = now;
    task.record.end = now + task.record.duration;
    resources_[r].busy += task.record.duration;
    resource_busy[r] = true;
    events.emplace(task.record.end, id);
  };

  for (ResourceId r = 0; r < resources_.size(); ++r) try_start(r);

  while (!events.empty()) {
    const auto [time, id] = events.top();
    events.pop();
    now = time;
    makespan_ = std::max(makespan_, now);
    --remaining;

    Task& finished = tasks_[id];
    resource_busy[finished.record.resource] = false;
    for (const TaskId dep : finished.dependents) {
      Task& t = tasks_[dep];
      if (--t.unmet_deps == 0) ready[t.record.resource].insert(dep);
    }
    // The freed resource and any resource that just gained a ready task may
    // start work at `now`.
    for (ResourceId r = 0; r < resources_.size(); ++r) try_start(r);
  }

  if (remaining != 0)
    throw std::logic_error("EventSimulator::run: tasks never became ready");
}

const TaskRecord& EventSimulator::record(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("EventSimulator::record");
  return tasks_[id].record;
}

double EventSimulator::busy_time(ResourceId id) const {
  if (id >= resources_.size())
    throw std::out_of_range("EventSimulator::busy_time");
  return resources_[id].busy;
}

const std::string& EventSimulator::resource_name(ResourceId id) const {
  if (id >= resources_.size())
    throw std::out_of_range("EventSimulator::resource_name");
  return resources_[id].name;
}

}  // namespace jps::sim
