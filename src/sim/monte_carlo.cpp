#include "sim/monte_carlo.h"

#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace jps::sim {

util::Summary monte_carlo_makespan(const dnn::Graph& graph,
                                   const partition::ProfileCurve& curve,
                                   const core::ExecutionPlan& plan,
                                   const profile::LatencyModel& mobile,
                                   const profile::LatencyModel& cloud,
                                   const net::Channel& channel,
                                   const MonteCarloOptions& options) {
  if (options.trials < 1)
    throw std::invalid_argument("monte_carlo_makespan: trials < 1");

  SimOptions sim_options;
  sim_options.comp_noise_sigma = options.comp_noise_sigma;
  sim_options.comm_noise_sigma = options.comm_noise_sigma;
  sim_options.include_cloud = options.include_cloud;

  std::vector<double> makespans(static_cast<std::size_t>(options.trials));
  // Each trial gets its own deterministic stream: seed + trial index.  The
  // per-trial streams make the result independent of how trials are spread
  // across the pool, so any `threads` value produces identical summaries.
  util::parallel_for(
      makespans.size(),
      [&](std::size_t trial) {
        util::Rng rng(options.seed +
                      static_cast<std::uint64_t>(trial) * 1000003ull);
        makespans[trial] = simulate_plan(graph, curve, plan, mobile, cloud,
                                         channel, sim_options, rng)
                               .makespan;
      },
      options.threads);
  return util::summarize(makespans);
}

}  // namespace jps::sim
