#include "sim/trace.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace jps::sim {

namespace {

// Paint [start, end) onto a width-wide canvas spanning [0, makespan).
void paint(std::string& row, double start, double end, double makespan,
           char symbol) {
  if (makespan <= 0.0 || end <= start) return;
  const auto width = static_cast<double>(row.size());
  auto lo = static_cast<std::size_t>(start / makespan * width);
  auto hi = static_cast<std::size_t>(end / makespan * width);
  lo = std::min(lo, row.size() - 1);
  hi = std::min(std::max(hi, lo + 1), row.size());
  for (std::size_t i = lo; i < hi; ++i) row[i] = symbol;
}

}  // namespace

std::string ascii_gantt(const SimResult& result, int width) {
  std::ostringstream os;
  const auto w = static_cast<std::size_t>(std::max(10, width));
  os << "time 0 " << std::string(w > 12 ? w - 12 : 0, '-') << " "
     << result.makespan << " ms\n";
  for (const SimJobResult& job : result.jobs) {
    std::string row(w, '.');
    paint(row, job.comp_start, job.comp_end, result.makespan, 'M');
    paint(row, job.comm_start, job.comm_end, result.makespan, '>');
    paint(row, job.cloud_start, job.cloud_end, result.makespan, 'C');
    os << "job " << job.job_id;
    if (job.job_id < 10) os << ' ';
    os << " |" << row << "|\n";
  }
  os << "legend: M mobile compute, > uplink transfer, C cloud compute\n";
  return os.str();
}

void append_chrome_trace(const EventSimulator& sim, obs::TraceWriter& writer,
                         int pid) {
  writer.set_process_name(pid, "simulated timeline");
  for (ResourceId r = 0; r < sim.resource_count(); ++r)
    writer.set_thread_name(pid, r, sim.resource_name(r));
  for (TaskId t = 0; t < sim.task_count(); ++t) {
    const TaskRecord& record = sim.record(t);
    if (record.start < 0.0) continue;  // never ran
    obs::TraceWriter::Event event;
    event.name = record.tag.empty() ? "task " + std::to_string(t) : record.tag;
    event.category = "sim";
    event.pid = pid;
    event.tid = record.resource;
    event.start_ms = record.start;
    event.dur_ms = record.end - record.start;
    writer.add_event(std::move(event));
  }
}

void append_chrome_trace(const SimResult& result, obs::TraceWriter& writer,
                         int pid) {
  writer.set_process_name(pid, "simulated timeline");
  writer.set_thread_name(pid, 0, "mobile_cpu");
  writer.set_thread_name(pid, 1, "uplink");
  writer.set_thread_name(pid, 2, "cloud_gpu");
  const auto add_stage = [&](const SimJobResult& job, std::uint64_t tid,
                             const char* stage, double start, double end) {
    if (end <= start) return;
    obs::TraceWriter::Event event;
    event.name = "j" + std::to_string(job.job_id) + ":" + stage;
    event.category = "sim";
    event.pid = pid;
    event.tid = tid;
    event.start_ms = start;
    event.dur_ms = end - start;
    event.args.emplace_back("cut", std::to_string(job.cut_index));
    writer.add_event(std::move(event));
  };
  for (const SimJobResult& job : result.jobs) {
    add_stage(job, 0, "comp", job.comp_start, job.comp_end);
    add_stage(job, 1, "tx", job.comm_start, job.comm_end);
    add_stage(job, 2, "cloud", job.cloud_start, job.cloud_end);
  }
}

std::string timeline_csv(const SimResult& result) {
  std::ostringstream os;
  os << "job_id,cut_index,comp_start,comp_end,comm_start,comm_end,cloud_start,"
        "cloud_end,completion\n";
  os.precision(6);
  os << std::fixed;
  for (const SimJobResult& job : result.jobs) {
    os << job.job_id << ',' << job.cut_index << ',' << job.comp_start << ','
       << job.comp_end << ',' << job.comm_start << ',' << job.comm_end << ','
       << job.cloud_start << ',' << job.cloud_end << ',' << job.completion()
       << '\n';
  }
  return os.str();
}

}  // namespace jps::sim
