// Internal building blocks shared by the plan executors (single-device,
// mixed-workload, shared-link).  Not part of the public API.
#pragma once

#include <limits>
#include <vector>

#include "dnn/graph.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/latency_model.h"
#include "sim/event_sim.h"
#include "sim/executor.h"
#include "util/rng.h"

namespace jps::sim::detail {

inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

struct JobTasks {
  std::vector<TaskId> local;
  TaskId transfer = kNoTask;
  std::vector<TaskId> remote;
};

struct Resources {
  ResourceId mobile;
  ResourceId link;
  ResourceId cloud;
};

/// Submit every task of one partitioned job (mobile layers -> transfer ->
/// cloud layers).  Submission order across calls defines FIFO priority.
[[nodiscard]] JobTasks submit_job(EventSimulator& sim, const Resources& resources,
                    const dnn::Graph& graph, const partition::CutPoint& cut,
                    std::size_t job_tag, const profile::LatencyModel& mobile,
                    const profile::LatencyModel& cloud,
                    const net::Channel& channel, const SimOptions& options,
                    util::Rng& rng);

/// Read one job's stage timeline back out of a finished simulation.
[[nodiscard]] SimJobResult collect(const EventSimulator& sim, const JobTasks& tasks,
                     int job_id, std::size_t cut_index);

}  // namespace jps::sim::detail
