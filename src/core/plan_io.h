// ExecutionPlan serialization: a deployment hands the planner's output to
// the device runtime as a small text artifact (the same spirit as the
// paper's pre-cut models + pre-built lookup table, §6.1).
//
// Format (line-oriented, versioned):
//   jps-plan v1
//   model <name>
//   strategy <LO|CO|PO|JPS|JPS*|JPS+|BF>
//   comm_heavy <count>
//   makespan_ms <double>
//   job <job_id> <cut_index> <f_ms> <g_ms>     (one line per job, in order)
#pragma once

#include <string>

#include "core/plan.h"

namespace jps::core {

/// Render a plan in the versioned text format.
[[nodiscard]] std::string serialize_plan(const ExecutionPlan& plan);

/// Parse a plan produced by serialize_plan.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] ExecutionPlan deserialize_plan(const std::string& text);

/// Write serialize_plan() to a file; throws std::runtime_error on I/O error.
void save_plan(const ExecutionPlan& plan, const std::string& path);

/// Read a file produced by save_plan.
[[nodiscard]] ExecutionPlan load_plan(const std::string& path);

}  // namespace jps::core
