// Algorithm 3 end-to-end: partition a general-structure DNN per independent
// path and schedule the paths with the modified Johnson's rule.
//
// Each of the n jobs contributes one schedulable unit per independent path.
// Ordering uses the duplicated stage lengths (f_dup, g_dup) exactly as the
// paper prescribes ("Johnson's rule is applied to all nodes, including
// duplicated nodes, in determining the scheduling order"), while the
// makespan evaluation counts every shared node and every shared transfer
// once per job ("duplicated nodes are only counted once when they are
// executed").
#pragma once

#include "partition/general_dag.h"

namespace jps::core {

/// One scheduled (job, path) unit with its de-duplicated stage lengths.
struct PathUnit {
  int job_id = 0;
  std::size_t path_index = 0;
  /// Ordering values (with duplicates).
  double f_dup = 0.0;
  double g_dup = 0.0;
  /// Evaluation values (shared work/transfers counted once per job).
  double f_actual = 0.0;
  double g_actual = 0.0;
};

/// The complete Alg. 3 result.
struct Alg3Plan {
  /// Units in processing order.
  std::vector<PathUnit> units;
  /// Independent paths per job.
  std::size_t paths_per_job = 0;
  /// Makespan with shared nodes counted once (the real cost), ms.
  double makespan = 0.0;
  /// Makespan if duplicates were naively re-executed (upper bound), ms.
  double makespan_dup = 0.0;
};

/// Run Alg. 3 for `n_jobs` identical jobs of `graph`.
/// Throws std::runtime_error when the path count exceeds `max_paths`.
[[nodiscard]] Alg3Plan plan_alg3(const dnn::Graph& graph,
                                 const partition::NodeTimeFn& mobile_time,
                                 const partition::CommTimeFn& comm_time,
                                 int n_jobs, std::size_t max_paths = 4096);

}  // namespace jps::core
