// The computation-/communication-heavy job-mix analysis of Fig. 14.
//
// With two partition types in play (a communication-heavy cut `cut_comm`
// where f < g, and a computation-heavy cut `cut_comp` where f >= g), the
// makespan depends on how many jobs take each type.  sweep_type_ratio
// evaluates every split exactly and reports the (typically interior)
// optimum; the paper observes the optimal ratio is usually not 1 and shifts
// with bandwidth.
#pragma once

#include <vector>

#include "partition/profile_curve.h"

namespace jps::core {

/// One point of the ratio sweep.
struct RatioPoint {
  /// Jobs at the communication-heavy cut.
  int n_comm_heavy = 0;
  /// Jobs at the computation-heavy cut.
  int n_comp_heavy = 0;
  /// n_comp_heavy / n_comm_heavy (the paper's x-axis).
  double ratio = 0.0;
  /// Johnson-scheduled makespan of this mix, ms.
  double makespan = 0.0;
};

/// Evaluate all splits n_comm_heavy = 1..n_jobs-1 of `n_jobs` jobs between
/// the two cuts. Throws std::invalid_argument when either index is out of
/// range or n_jobs < 2.
[[nodiscard]] std::vector<RatioPoint> sweep_type_ratio(
    const partition::ProfileCurve& curve, std::size_t cut_comm,
    std::size_t cut_comp, int n_jobs);

/// The sweep point with the smallest makespan.  Throws std::invalid_argument
/// on an empty sweep (a silent infinity-makespan default hid caller bugs).
[[nodiscard]] RatioPoint best_ratio(const std::vector<RatioPoint>& sweep);

}  // namespace jps::core
