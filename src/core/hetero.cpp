#include "core/hetero.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/thread_pool.h"

namespace jps::core {

namespace {

// Per-class cut indices -> ordered plan with makespan.
HeteroPlan evaluate(std::span<const JobClass> classes,
                    const std::vector<std::vector<std::size_t>>& cuts) {
  sched::JobList jobs;
  std::vector<HeteroUnit> units;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (std::size_t j = 0; j < cuts[c].size(); ++j) {
      HeteroUnit unit;
      unit.class_index = static_cast<int>(c);
      unit.job_id = static_cast<int>(j);
      unit.cut_index = cuts[c][j];
      unit.f = classes[c].curve.f(unit.cut_index);
      unit.g = classes[c].curve.g(unit.cut_index);
      jobs.push_back(sched::Job{.id = static_cast<int>(units.size()),
                                .cut = static_cast<int>(unit.cut_index),
                                .f = unit.f,
                                .g = unit.g});
      units.push_back(unit);
    }
  }
  const sched::JohnsonSchedule schedule = sched::johnson_order(jobs);

  HeteroPlan plan;
  plan.comm_heavy_count = schedule.comm_heavy_count;
  plan.scheduled.reserve(units.size());
  for (const std::size_t idx : schedule.order)
    plan.scheduled.push_back(units[idx]);
  plan.makespan =
      sched::flowshop2_makespan(sched::apply_order(jobs, schedule.order));
  return plan;
}

// The cut of `curve` minimizing lambda*f + (1-lambda)*g (lowest index wins
// ties, which keeps the choice deterministic).
std::size_t argmin_cut(const partition::ProfileCurve& curve, double lambda) {
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double cost = lambda * curve.f(i) + (1.0 - lambda) * curve.g(i);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

// Total f minus total g when every job of class c sits at assignment[c].
double imbalance(std::span<const JobClass> classes,
                 const std::vector<std::size_t>& assignment) {
  double d = 0.0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto n = static_cast<double>(classes[c].count);
    d += n * (classes[c].curve.f(assignment[c]) -
              classes[c].curve.g(assignment[c]));
  }
  return d;
}

std::vector<std::size_t> per_class_cuts_at(std::span<const JobClass> classes,
                                           double lambda) {
  std::vector<std::size_t> cuts;
  cuts.reserve(classes.size());
  for (const JobClass& jc : classes) cuts.push_back(argmin_cut(jc.curve, lambda));
  return cuts;
}

HeteroPlan balanced_plan(std::span<const JobClass> classes) {
  // Bisect lambda: small lambda prices communication, pushing every class
  // local (sum f >> sum g); lambda -> 1 prices compute, pushing cloud-only.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (imbalance(classes, per_class_cuts_at(classes, mid)) > 0.0) {
      lo = mid;  // still compute-heavy: price compute harder
    } else {
      hi = mid;
    }
  }
  const std::vector<std::size_t> cuts_lo = per_class_cuts_at(classes, lo);
  const std::vector<std::size_t> cuts_hi = per_class_cuts_at(classes, hi);

  // Expand to per-job assignments at the compute-heavy side of the fence.
  std::vector<std::vector<std::size_t>> assignment(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c)
    assignment[c].assign(static_cast<std::size_t>(classes[c].count),
                         cuts_lo[c]);

  HeteroPlan best = evaluate(classes, assignment);
  // Walk jobs across the fence one at a time (classes where the two lambda
  // endpoints disagree), keeping the best exact makespan seen.  Each move
  // trades total compute for total communication, so the sweep crosses the
  // balance point; the exact evaluation also captures the boundary terms.
  // Each class's walk starts from the all-lo assignment and is independent
  // of the others, so the walks run concurrently on the shared pool (each
  // on its own assignment copy) and merge in class order afterwards —
  // bit-identical to the sequential sweep.
  std::vector<std::optional<HeteroPlan>> walk_best(classes.size());
  util::parallel_for(classes.size(), [&](std::size_t c) {
    if (cuts_lo[c] == cuts_hi[c]) return;
    std::vector<std::vector<std::size_t>> local = assignment;
    std::optional<HeteroPlan> class_best;
    for (int moved = 0; moved < classes[c].count; ++moved) {
      local[c][static_cast<std::size_t>(moved)] = cuts_hi[c];
      HeteroPlan candidate = evaluate(classes, local);
      if (!class_best || candidate.makespan < class_best->makespan)
        class_best = std::move(candidate);
    }
    walk_best[c] = std::move(class_best);
  });
  for (std::optional<HeteroPlan>& candidate : walk_best) {
    if (candidate && candidate->makespan < best.makespan)
      best = std::move(*candidate);
  }
  // Combined greedy pass: move in whichever class best reduces |imbalance|
  // until no move helps the exact makespan.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (cuts_lo[c] == cuts_hi[c]) continue;
      // Count jobs currently at the hi cut; try one more.
      auto& jobs = assignment[c];
      const auto at_hi = static_cast<int>(
          std::count(jobs.begin(), jobs.end(), cuts_hi[c]));
      if (at_hi >= classes[c].count) continue;
      jobs[static_cast<std::size_t>(at_hi)] = cuts_hi[c];
      HeteroPlan candidate = evaluate(classes, assignment);
      if (candidate.makespan < best.makespan - 1e-12) {
        best = std::move(candidate);
        improved = true;
      } else {
        jobs[static_cast<std::size_t>(at_hi)] = cuts_lo[c];  // undo
      }
    }
  }
  best.lambda = 0.5 * (lo + hi);
  return best;
}

}  // namespace

HeteroPlan plan_hetero(std::span<const JobClass> classes, Strategy strategy) {
  if (classes.empty())
    throw std::invalid_argument("plan_hetero: no job classes");
  for (const JobClass& jc : classes) {
    if (jc.count < 1)
      throw std::invalid_argument("plan_hetero: class count < 1");
    if (jc.curve.size() == 0)
      throw std::invalid_argument("plan_hetero: empty curve");
  }

  switch (strategy) {
    case Strategy::kLocalOnly:
    case Strategy::kCloudOnly:
    case Strategy::kPartitionOnly: {
      std::vector<std::vector<std::size_t>> cuts(classes.size());
      for (std::size_t c = 0; c < classes.size(); ++c) {
        std::size_t cut = 0;
        if (strategy == Strategy::kLocalOnly) {
          cut = classes[c].curve.local_only_index();
        } else if (strategy == Strategy::kCloudOnly) {
          cut = classes[c].curve.cloud_only_index();
        } else {
          double best_latency = std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < classes[c].curve.size(); ++i) {
            const double latency =
                classes[c].curve.f(i) + classes[c].curve.g(i);
            if (latency < best_latency) {
              best_latency = latency;
              cut = i;
            }
          }
        }
        cuts[c].assign(static_cast<std::size_t>(classes[c].count), cut);
      }
      return evaluate(classes, cuts);
    }
    case Strategy::kJPS:
    case Strategy::kJPSTuned:
    case Strategy::kJPSHull:
      return balanced_plan(classes);
    case Strategy::kBruteForce:
      throw std::invalid_argument(
          "plan_hetero: no built-in brute force; enumerate externally");
    case Strategy::kRobust:
      throw std::invalid_argument(
          "plan_hetero: robust planning is per-class; use core::RobustPlanner");
  }
  throw std::invalid_argument("plan_hetero: unknown strategy");
}

}  // namespace jps::core
