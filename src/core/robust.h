// Uncertainty-aware planning over a bandwidth interval.
//
// The closed-form planner (core/planner.h) optimizes the makespan at one
// nominal bandwidth.  When the uplink drifts, that plan can degrade badly:
// a communication-heavy mix tuned to 19 Mbps stalls the pipeline at 6 Mbps.
// RobustPlanner instead sweeps the same two-cut-type design space —
// every pair (a <= b) on the monotone curve and every split n_a — but
// scores each candidate across a grid of bandwidth samples spanning an
// uncertainty interval [lo, hi], minimizing either
//
//   * worst-case makespan: max over samples, or
//   * CVaR_alpha: the mean of the worst (1 - alpha) tail of the samples
//     (alpha = 0.9 averages the worst 10%), a standard risk measure that
//     is less conservative than pure min-max.
//
// Re-scoring a cut at bandwidth s only rescales its serialization term
// (g is affine in offload bytes; see ProfileCurve::with_bandwidth), so f
// is fixed and the Johnson order "a-jobs before b-jobs" holds at every
// sample — each candidate evaluates in O(1) per sample via
// two_type_makespan.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/plan.h"
#include "net/channel.h"
#include "partition/profile_curve.h"

namespace jps::core {

/// Closed uplink-bandwidth uncertainty interval [lo_mbps, hi_mbps].
struct BandwidthInterval {
  double lo_mbps = 0.0;
  double hi_mbps = 0.0;
};

enum class RobustObjective {
  kWorstCase,  // minimize the maximum makespan over the interval
  kCVaR,       // minimize the mean of the worst (1 - alpha) tail
};

struct RobustPlannerOptions {
  /// Bandwidth grid resolution (samples >= 1 evenly spaced over the
  /// interval; 1 collapses to the midpoint).
  int samples = 33;
  /// CVaR tail parameter in [0, 1): alpha = 0.9 averages the worst 10% of
  /// samples.  alpha = 0 degenerates to the plain mean.
  double cvar_alpha = 0.9;
  RobustObjective objective = RobustObjective::kWorstCase;
};

/// The chosen two-type mix plus its risk profile over the interval.
struct RobustDecision {
  std::size_t cut_a = 0;  ///< comm-heavy cut (earlier index, larger g)
  std::size_t cut_b = 0;  ///< comp-heavy cut (a == b for a pure plan)
  int n_a = 0;            ///< jobs at cut_a; the rest sit at cut_b
  double worst_case_ms = 0.0;  ///< max makespan over the grid
  double cvar_ms = 0.0;        ///< CVaR_alpha makespan over the grid
  double nominal_ms = 0.0;     ///< makespan at the base channel's bandwidth
};

/// Sweeps (pair, split) candidates over a bandwidth grid.  The curve must be
/// monotone (built with clustering on), matching Planner's precondition.
class RobustPlanner {
 public:
  /// `channel` supplies the affine comm model (setup latency + rate) that is
  /// re-based to each grid sample; its own bandwidth is the nominal point.
  /// Throws std::invalid_argument on an empty/non-monotone curve, a bad
  /// interval (lo <= 0 or hi < lo), samples < 1, or cvar_alpha outside
  /// [0, 1).
  RobustPlanner(partition::ProfileCurve curve, net::Channel channel,
                BandwidthInterval interval, RobustPlannerOptions options = {});

  /// The optimal (pair, split) for n_jobs under the configured objective.
  /// Ties break toward the first candidate in (cut_a, cut_b, n_a) order,
  /// keeping the choice deterministic.  Throws for n_jobs < 1.
  [[nodiscard]] RobustDecision decide(int n_jobs) const;

  /// decide() assembled into a full Strategy::kRobust ExecutionPlan (f and g
  /// at the curve's nominal rates; predicted_makespan is the nominal one).
  [[nodiscard]] ExecutionPlan plan(int n_jobs) const;

  [[nodiscard]] const partition::ProfileCurve& curve() const { return curve_; }
  [[nodiscard]] const net::Channel& channel() const { return channel_; }
  [[nodiscard]] const BandwidthInterval& interval() const { return interval_; }

  /// The evaluation grid: options.samples rates evenly spanning the
  /// interval (inclusive endpoints; midpoint when samples == 1).
  [[nodiscard]] std::vector<double> bandwidth_grid() const;

 private:
  partition::ProfileCurve curve_;
  net::Channel channel_;
  BandwidthInterval interval_;
  RobustPlannerOptions options_;
  /// Per-cut-contiguous comm-time grid: g_grid_[i * samples + s] is the comm
  /// time of cut i at grid sample s.  Keeping each cut's samples contiguous
  /// lets decide() hand a candidate pair straight to two_type_makespan_batch
  /// as two spans — one batched kernel call per (pair, split) instead of one
  /// scalar call per sample.
  std::vector<double> g_grid_;
  /// g at the nominal (channel) bandwidth, indexed by cut.
  std::vector<double> g_nominal_;

  /// The `samples` comm times of cut i, one per grid rate.
  [[nodiscard]] std::span<const double> cut_samples(std::size_t i) const {
    return std::span<const double>(g_grid_)
        .subspan(i * static_cast<std::size_t>(options_.samples),
                 static_cast<std::size_t>(options_.samples));
  }
};

/// Mean of the worst (1 - alpha) tail of `samples` (each equiprobable).
/// The tail always contains at least one sample.  Throws on empty input or
/// alpha outside [0, 1).
[[nodiscard]] double cvar_tail_mean(std::vector<double> samples, double alpha);

/// Makespan of a FIXED plan (order and cuts kept) re-evaluated at each of
/// `samples` bandwidths spanning `interval`: each job's g is rescaled via
/// the channel's affine model at that rate and the exact closed-form
/// makespan of the unchanged order is returned per sample.  This is how the
/// fault bench scores a static plan against drifted links.
[[nodiscard]] std::vector<double> plan_makespans_over_interval(
    const ExecutionPlan& plan, const partition::ProfileCurve& curve,
    const net::Channel& channel, BandwidthInterval interval, int samples);

}  // namespace jps::core
