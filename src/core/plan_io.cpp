#include "core/plan_io.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/contracts.h"
#include "check/lint_plan.h"

namespace jps::core {

std::string serialize_plan(const ExecutionPlan& plan) {
  std::ostringstream os;
  // max_digits10: doubles round-trip exactly through the text format.
  os.precision(17);
  os << "jps-plan v1" << '\n';
  os << "model " << plan.model << '\n';
  os << "strategy " << strategy_name(plan.strategy) << '\n';
  os << "comm_heavy " << plan.comm_heavy_count << '\n';
  os << "makespan_ms " << plan.predicted_makespan << '\n';
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    os << "job " << plan.jobs[i].job_id << ' ' << plan.jobs[i].cut_index << ' '
       << plan.scheduled_jobs[i].f << ' ' << plan.scheduled_jobs[i].g << '\n';
  }
  return os.str();
}

ExecutionPlan deserialize_plan(const std::string& text) {
  // Parse and semantic rules both run through the shared rule packs, so a
  // plan that loads here is exactly a plan that passes `jps_lint` (up to the
  // cross-artifact rules, which need a model/channel this API does not take).
  check::DiagnosticList diagnostics;
  std::optional<ExecutionPlan> plan = check::parse_plan_text(text, diagnostics);
  if (plan && !diagnostics.has_errors())
    check::lint_plan(*plan, diagnostics);
  check::throw_parse_error_if_any(diagnostics, "plan_io");
  JPS_INVARIANT(plan.has_value(),
                "an error-free parse always produces a plan");
  return std::move(*plan);
}

void save_plan(const ExecutionPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("plan_io: cannot open " + path);
  out << serialize_plan(plan);
  if (!out) throw std::runtime_error("plan_io: write failed for " + path);
}

ExecutionPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("plan_io: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_plan(buffer.str());
}

}  // namespace jps::core
