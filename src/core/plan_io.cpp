#include "core/plan_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sched/makespan.h"
#include "util/strings.h"

namespace jps::core {

namespace {
constexpr const char* kHeader = "jps-plan v1";

Strategy parse_strategy_name(const std::string& name) {
  for (const Strategy s :
       {Strategy::kLocalOnly, Strategy::kCloudOnly, Strategy::kPartitionOnly,
        Strategy::kJPS, Strategy::kJPSTuned, Strategy::kJPSHull,
        Strategy::kBruteForce, Strategy::kRobust}) {
    if (name == strategy_name(s)) return s;
  }
  throw std::runtime_error("plan_io: unknown strategy '" + name + "'");
}
}  // namespace

std::string serialize_plan(const ExecutionPlan& plan) {
  std::ostringstream os;
  // max_digits10: doubles round-trip exactly through the text format.
  os.precision(17);
  os << kHeader << '\n';
  os << "model " << plan.model << '\n';
  os << "strategy " << strategy_name(plan.strategy) << '\n';
  os << "comm_heavy " << plan.comm_heavy_count << '\n';
  os << "makespan_ms " << plan.predicted_makespan << '\n';
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    os << "job " << plan.jobs[i].job_id << ' ' << plan.jobs[i].cut_index << ' '
       << plan.scheduled_jobs[i].f << ' ' << plan.scheduled_jobs[i].g << '\n';
  }
  return os.str();
}

ExecutionPlan deserialize_plan(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || util::trim(line) != kHeader)
    throw std::runtime_error("plan_io: bad header");

  ExecutionPlan plan;
  bool have_model = false;
  bool have_strategy = false;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string trimmed{util::trim(line)};
    if (trimmed.empty()) continue;
    std::istringstream fields(trimmed);
    std::string key;
    fields >> key;
    const auto fail = [&] {
      throw std::runtime_error("plan_io: bad line " + std::to_string(line_no));
    };
    if (key == "model") {
      fields >> plan.model;
      have_model = true;
    } else if (key == "strategy") {
      std::string name;
      fields >> name;
      plan.strategy = parse_strategy_name(name);
      have_strategy = true;
    } else if (key == "comm_heavy") {
      if (!(fields >> plan.comm_heavy_count)) fail();
    } else if (key == "makespan_ms") {
      if (!(fields >> plan.predicted_makespan)) fail();
    } else if (key == "job") {
      JobAssignment assignment;
      sched::Job job;
      if (!(fields >> assignment.job_id >> assignment.cut_index >> job.f >>
            job.g))
        fail();
      job.id = assignment.job_id;
      job.cut = static_cast<int>(assignment.cut_index);
      plan.jobs.push_back(assignment);
      plan.scheduled_jobs.push_back(job);
    } else {
      fail();
    }
  }
  if (!have_model || !have_strategy || plan.jobs.empty())
    throw std::runtime_error("plan_io: incomplete plan");
  return plan;
}

void save_plan(const ExecutionPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("plan_io: cannot open " + path);
  out << serialize_plan(plan);
  if (!out) throw std::runtime_error("plan_io: write failed for " + path);
}

ExecutionPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("plan_io: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_plan(buffer.str());
}

}  // namespace jps::core
