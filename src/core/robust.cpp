#include "core/robust.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/planner.h"
#include "obs/obs.h"
#include "sched/makespan.h"

namespace jps::core {

namespace {

std::vector<double> grid_points(const BandwidthInterval& interval,
                                int samples) {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(samples));
  if (samples == 1) {
    grid.push_back(0.5 * (interval.lo_mbps + interval.hi_mbps));
    return grid;
  }
  const double step = (interval.hi_mbps - interval.lo_mbps) /
                      static_cast<double>(samples - 1);
  for (int s = 0; s < samples; ++s)
    grid.push_back(interval.lo_mbps + step * static_cast<double>(s));
  grid.back() = interval.hi_mbps;  // exact endpoint despite rounding
  return grid;
}

std::vector<double> comm_times_at(const partition::ProfileCurve& curve,
                                  const net::Channel& channel, double mbps) {
  const net::Channel at_rate = channel.with_bandwidth(mbps);
  const std::span<const std::uint64_t> bytes = curve.offload_bytes_lane();
  std::vector<double> g(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i)
    g[i] = bytes[i] > 0 ? at_rate.time_ms(bytes[i]) : 0.0;
  return g;
}

}  // namespace

double cvar_tail_mean(std::vector<double> samples, double alpha) {
  if (samples.empty())
    throw std::invalid_argument("cvar_tail_mean: no samples");
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument("cvar_tail_mean: alpha outside [0, 1)");
  const auto n = samples.size();
  auto tail = static_cast<std::size_t>(
      static_cast<double>(n) * (1.0 - alpha) + (1.0 - 1e-12));
  tail = std::clamp<std::size_t>(tail, 1, n);
  std::partial_sort(samples.begin(),
                    samples.begin() + static_cast<std::ptrdiff_t>(tail),
                    samples.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < tail; ++i) sum += samples[i];
  return sum / static_cast<double>(tail);
}

RobustPlanner::RobustPlanner(partition::ProfileCurve curve,
                             net::Channel channel, BandwidthInterval interval,
                             RobustPlannerOptions options)
    : curve_(std::move(curve)),
      channel_(channel),
      interval_(interval),
      options_(options) {
  if (curve_.size() == 0)
    throw std::invalid_argument("RobustPlanner: empty curve");
  if (!curve_.is_monotone())
    throw std::invalid_argument("RobustPlanner: curve must be monotone");
  if (interval_.lo_mbps <= 0.0 || interval_.hi_mbps < interval_.lo_mbps)
    throw std::invalid_argument("RobustPlanner: bad bandwidth interval");
  if (options_.samples < 1)
    throw std::invalid_argument("RobustPlanner: samples < 1");
  if (options_.cvar_alpha < 0.0 || options_.cvar_alpha >= 1.0)
    throw std::invalid_argument("RobustPlanner: cvar_alpha outside [0, 1)");

  // Fill the per-cut-contiguous grid: cut i's samples occupy
  // g_grid_[i * samples .. i * samples + samples).
  const auto samples = static_cast<std::size_t>(options_.samples);
  g_grid_.resize(curve_.size() * samples);
  const std::vector<double> grid = bandwidth_grid();
  for (std::size_t s = 0; s < grid.size(); ++s) {
    const std::vector<double> g = comm_times_at(curve_, channel_, grid[s]);
    for (std::size_t i = 0; i < curve_.size(); ++i)
      g_grid_[i * samples + s] = g[i];
  }
  g_nominal_.resize(curve_.size());
  for (std::size_t i = 0; i < curve_.size(); ++i) g_nominal_[i] = curve_.g(i);
}

std::vector<double> RobustPlanner::bandwidth_grid() const {
  return grid_points(interval_, options_.samples);
}

RobustDecision RobustPlanner::decide(int n_jobs) const {
  if (n_jobs < 1)
    throw std::invalid_argument("RobustPlanner::decide: n_jobs < 1");
  obs::Span span("robust.decide", "core");
  span.arg("n_jobs", std::to_string(n_jobs));
  span.arg("samples", std::to_string(options_.samples));

  // Per-sample makespans of one candidate, reused across candidates.
  std::vector<double> ms(static_cast<std::size_t>(options_.samples));
  RobustDecision best;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < curve_.size(); ++a) {
    const std::span<const double> g_a = cut_samples(a);
    for (std::size_t b = a; b < curve_.size(); ++b) {
      const std::span<const double> g_b = cut_samples(b);
      // a == b only needs the pure split n_a = 0 (all jobs at b).
      const int max_na = a == b ? 0 : n_jobs;
      for (int n_a = 0; n_a <= max_na; ++n_a) {
        // One branch-light kernel call scores this candidate across the
        // whole grid; out[s] is bit-identical to the scalar
        // two_type_makespan at sample s.
        two_type_makespan_batch(curve_.f(a), g_a, curve_.f(b), g_b, n_a,
                                n_jobs - n_a, ms);
        const double worst = *std::max_element(ms.begin(), ms.end());
        const double risk = cvar_tail_mean(ms, options_.cvar_alpha);
        const double score =
            options_.objective == RobustObjective::kWorstCase ? worst : risk;
        if (score < best_score) {
          best_score = score;
          best.cut_a = a;
          best.cut_b = b;
          best.n_a = n_a;
          best.worst_case_ms = worst;
          best.cvar_ms = risk;
        }
      }
    }
  }
  best.nominal_ms =
      two_type_makespan(curve_.f(best.cut_a), g_nominal_[best.cut_a],
                        curve_.f(best.cut_b), g_nominal_[best.cut_b], best.n_a,
                        n_jobs - best.n_a);
  span.arg("worst_case_ms", best.worst_case_ms);
  span.arg("cvar_ms", best.cvar_ms);
  return best;
}

ExecutionPlan RobustPlanner::plan(int n_jobs) const {
  const RobustDecision decision = decide(n_jobs);
  std::vector<std::size_t> cuts(static_cast<std::size_t>(n_jobs),
                                decision.cut_b);
  for (int i = 0; i < decision.n_a; ++i)
    cuts[static_cast<std::size_t>(i)] = decision.cut_a;
  return assemble_plan(curve_, Strategy::kRobust, cuts);
}

std::vector<double> plan_makespans_over_interval(
    const ExecutionPlan& plan, const partition::ProfileCurve& curve,
    const net::Channel& channel, BandwidthInterval interval, int samples) {
  if (samples < 1)
    throw std::invalid_argument("plan_makespans_over_interval: samples < 1");
  if (interval.lo_mbps <= 0.0 || interval.hi_mbps < interval.lo_mbps)
    throw std::invalid_argument("plan_makespans_over_interval: bad interval");
  // Hoist the fixed f lane once; per sample only the g lane is rewritten —
  // no JobList copy, and the lane closed_form_makespan streams two
  // contiguous arrays.
  std::vector<double> f(plan.scheduled_jobs.size());
  for (std::size_t i = 0; i < plan.scheduled_jobs.size(); ++i)
    f[i] = plan.scheduled_jobs[i].f;
  std::vector<double> g_jobs(plan.scheduled_jobs.size());
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (const double mbps : grid_points(interval, samples)) {
    const std::vector<double> g = comm_times_at(curve, channel, mbps);
    for (std::size_t i = 0; i < g_jobs.size(); ++i)
      g_jobs[i] = g[plan.jobs[i].cut_index];
    out.push_back(sched::closed_form_makespan(f, g_jobs));
  }
  return out;
}

}  // namespace jps::core
