#include "core/energy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace jps::core {

double EnergyModel::schedule_energy_mj(const partition::ProfileCurve& curve,
                                       std::span<const std::size_t> cuts,
                                       double makespan_ms) const {
  double busy_ms = 0.0;
  double active_mj = 0.0;
  for (const std::size_t cut : cuts) {
    if (cut >= curve.size())
      throw std::invalid_argument("schedule_energy_mj: cut out of range");
    busy_ms += curve.f(cut) + curve.g(cut);
    active_mj += job_energy_mj(curve, cut);
  }
  // Compute and transmit can overlap in the pipeline, so the busy time can
  // exceed the makespan; idle time is whatever wall-clock is left, if any.
  const double idle_ms = std::max(0.0, makespan_ms - busy_ms);
  return active_mj + idle_ms * power_.idle_watts;
}

std::size_t EnergyModel::energy_optimal_cut(
    const partition::ProfileCurve& curve) const {
  std::size_t best = 0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double energy = job_energy_mj(curve, i);
    if (energy < best_energy) {
      best_energy = energy;
      best = i;
    }
  }
  return best;
}

}  // namespace jps::core
