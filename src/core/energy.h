// Mobile energy accounting for partitioned inference.
//
// Neurosurgeon [Kang et al. 2017] — the single-DNN partitioner behind the
// paper's PO baseline — optimizes either latency or MOBILE ENERGY.  This
// module adds the energy side so the same profile curves support both
// objectives: while the mobile device computes it draws `compute_watts`,
// while transmitting it draws `tx_watts`, and between its own jobs it idles
// at `idle_watts`.  Cloud energy is not the phone's problem and is not
// counted.
#pragma once

#include "partition/profile_curve.h"

namespace jps::core {

/// Power draw of the mobile device in each state, watts.
struct PowerProfile {
  double compute_watts = 0.0;
  double tx_watts = 0.0;
  double idle_watts = 0.0;

  /// Raspberry-Pi-4B-class numbers: ~5.5 W loaded, ~1.8 W radio TX over
  /// the baseline, ~2.7 W idle.
  [[nodiscard]] static PowerProfile raspberry_pi_4b() {
    return PowerProfile{5.5, 1.8, 2.7};
  }
};

/// Energy model over a profile curve.
class EnergyModel {
 public:
  explicit EnergyModel(PowerProfile power) : power_(power) {}

  /// Active energy of ONE job partitioned at cut `i` of `curve`:
  /// f * compute + g * tx, in millijoules (ms * W).
  [[nodiscard]] double job_energy_mj(const partition::ProfileCurve& curve,
                                     std::size_t i) const {
    return curve.f(i) * power_.compute_watts + curve.g(i) * power_.tx_watts;
  }

  /// Energy of a whole schedule over `makespan_ms`: active energy of every
  /// job plus idle draw for the remaining wall-clock time.
  [[nodiscard]] double schedule_energy_mj(const partition::ProfileCurve& curve,
                                          std::span<const std::size_t> cuts,
                                          double makespan_ms) const;

  /// The cut minimizing a single job's active energy (Neurosurgeon's
  /// "best energy" partition point).
  [[nodiscard]] std::size_t energy_optimal_cut(
      const partition::ProfileCurve& curve) const;

  [[nodiscard]] const PowerProfile& power() const { return power_; }

 private:
  PowerProfile power_;
};

}  // namespace jps::core
