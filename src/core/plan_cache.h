// Memoization of profile curves and execution plans.
//
// Serving traffic means answering the same planning question again and
// again: the fig13/fig14 sweeps ask for one curve per (model, bandwidth)
// and four plans on top of it; a deployment asks for the same (model,
// device, bandwidth, strategy, n) whenever two users share a network
// condition.  Curve construction walks the whole DNN graph and planning
// re-runs Johnson + makespan, so both are worth caching: results are pure
// functions of their keys (deterministic by design — see
// docs/PARALLELISM.md).
//
// Concurrency: reads take a shared lock; a miss builds *outside* any lock
// (concurrent misses for one key may build twice — the first insert wins
// and later builders adopt the cached value, keeping hit pointers stable).
// Values are handed out as shared_ptr<const T> so entries stay alive across
// clear() while a caller still uses them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "partition/profile_curve.h"
#include "util/mutex.h"

namespace jps::core {

/// Identity of a profile curve: one model on one device over one channel.
///
/// The constructor canonicalizes the bandwidth (-0.0 becomes 0.0, so equal
/// keys hash equally) and rejects non-finite values with a JPS_REQUIRE: a
/// NaN bandwidth would compare unequal to itself, making the entry
/// unreachable while it silently occupies (and poisons) the table.
struct CurveCacheKey {
  std::string model;
  /// Device/profile identity (e.g. DeviceProfile::name, or a lookup-table
  /// path for profiled deployments).
  std::string device;
  double bandwidth_mbps = 0.0;

  CurveCacheKey() = default;
  CurveCacheKey(std::string model, std::string device, double bandwidth_mbps);

  friend bool operator==(const CurveCacheKey&, const CurveCacheKey&) = default;
};

/// Identity of an execution plan: a curve identity plus the planning ask.
/// Bandwidth canonicalization/validation as in CurveCacheKey.
struct PlanCacheKey {
  std::string model;
  std::string device;
  double bandwidth_mbps = 0.0;
  Strategy strategy = Strategy::kJPS;
  int n_jobs = 0;

  PlanCacheKey() = default;
  PlanCacheKey(std::string model, std::string device, double bandwidth_mbps,
               Strategy strategy = Strategy::kJPS, int n_jobs = 0);

  friend bool operator==(const PlanCacheKey&, const PlanCacheKey&) = default;
};

/// Thread-safe memo of curves and plans with hit/miss accounting.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t curve_hits = 0;
    std::uint64_t curve_misses = 0;
    std::uint64_t plan_hits = 0;
    std::uint64_t plan_misses = 0;

    [[nodiscard]] std::uint64_t hits() const { return curve_hits + plan_hits; }
    [[nodiscard]] std::uint64_t misses() const {
      return curve_misses + plan_misses;
    }
    /// Hits over lookups across both tables (0 when never queried).
    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits() + misses();
      return total == 0 ? 0.0
                        : static_cast<double>(hits()) /
                              static_cast<double>(total);
    }
  };

  using CurveBuilder = std::function<partition::ProfileCurve()>;
  using PlanBuilder = std::function<ExecutionPlan()>;

  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The curve for `key`, building it with `build` on a miss.
  [[nodiscard]] std::shared_ptr<const partition::ProfileCurve> curve(
      const CurveCacheKey& key, const CurveBuilder& build);

  /// The plan for `key`, building it with `build` on a miss.
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> plan(
      const PlanCacheKey& key, const PlanBuilder& build);

  /// One exported plan-table entry (snapshot format, tests).
  using PlanEntry = std::pair<PlanCacheKey, std::shared_ptr<const ExecutionPlan>>;

  /// Quiet insert for warm-start: no hit/miss accounting, first insert wins
  /// (an already-cached key keeps its value — a reloaded snapshot must
  /// never clobber a plan computed after startup).
  void insert_plan(const PlanCacheKey& key,
                   std::shared_ptr<const ExecutionPlan> plan);

  /// Every plan-table entry, unordered.  Values are shared, not copied.
  [[nodiscard]] std::vector<PlanEntry> plan_entries() const;

  /// The cached plan whose key matches `want` on every field except
  /// bandwidth, minimizing |bandwidth - want.bandwidth_mbps| (ties to the
  /// lower bandwidth, so the answer is deterministic).  Degraded-mode
  /// lookup for an open circuit breaker: "a plan for roughly this uplink
  /// beats no plan at all".  nullptr when no candidate exists.
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> nearest_plan(
      const PlanCacheKey& want, double* bandwidth_out = nullptr) const;

  /// Counters snapshot (monotone since construction or reset_stats()).
  [[nodiscard]] Stats stats() const;

  /// Zero the hit/miss counters (entries are kept).
  void reset_stats();

  /// Drop all entries and zero the counters.  Outstanding shared_ptrs stay
  /// valid.
  void clear();

  [[nodiscard]] std::size_t curve_count() const;
  [[nodiscard]] std::size_t plan_count() const;

  /// The process-wide cache the benches, CLI, and serving paths share.
  [[nodiscard]] static PlanCache& global();

 private:
  struct CurveKeyHash {
    std::size_t operator()(const CurveCacheKey& k) const;
  };
  struct PlanKeyHash {
    std::size_t operator()(const PlanCacheKey& k) const;
  };

  friend class ShardedPlanCache;

  // One lock-order name per cache *class*: every shard (and the global
  // cache) is interchangeable in the acquisition graph, and no code path
  // nests two of them.
  mutable util::SharedMutex mutex_{"core.plan_cache"};
  std::unordered_map<CurveCacheKey,
                     std::shared_ptr<const partition::ProfileCurve>,
                     CurveKeyHash>
      curves_ JPS_GUARDED_BY(mutex_);
  std::unordered_map<PlanCacheKey, std::shared_ptr<const ExecutionPlan>,
                     PlanKeyHash>
      plans_ JPS_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> curve_hits_{0};
  std::atomic<std::uint64_t> curve_misses_{0};
  std::atomic<std::uint64_t> plan_hits_{0};
  std::atomic<std::uint64_t> plan_misses_{0};
};

/// PlanCache striped across N independent shards, each with its own
/// shared_mutex.  One PlanCache is enough for a bench loop, but a
/// multi-tenant plan server answers concurrent requests for *different*
/// (model, bandwidth-bucket) keys, and a single writer inserting a miss
/// would stall every reader behind one lock.  Keys are routed to a shard by
/// their hash (curve and plan keys with equal (model, device, bandwidth)
/// stay on potentially different shards — the tables are independent, so
/// that is fine), which keeps PlanCache itself untouched while serving gets
/// lock striping for free.
class ShardedPlanCache {
 public:
  /// `shards` is clamped to at least 1.
  explicit ShardedPlanCache(std::size_t shards = 8);

  ShardedPlanCache(const ShardedPlanCache&) = delete;
  ShardedPlanCache& operator=(const ShardedPlanCache&) = delete;

  /// Same contract as PlanCache::curve / PlanCache::plan.
  [[nodiscard]] std::shared_ptr<const partition::ProfileCurve> curve(
      const CurveCacheKey& key, const PlanCache::CurveBuilder& build);
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> plan(
      const PlanCacheKey& key, const PlanCache::PlanBuilder& build);

  /// Same contract as the PlanCache counterparts; entries aggregate across
  /// shards and nearest_plan scans every shard for the global minimum.
  void insert_plan(const PlanCacheKey& key,
                   std::shared_ptr<const ExecutionPlan> plan);
  [[nodiscard]] std::vector<PlanCache::PlanEntry> plan_entries() const;
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> nearest_plan(
      const PlanCacheKey& want, double* bandwidth_out = nullptr) const;

  /// Counters aggregated across every shard.
  [[nodiscard]] PlanCache::Stats stats() const;

  void reset_stats();
  void clear();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t curve_count() const;
  [[nodiscard]] std::size_t plan_count() const;

  /// Shard index a key routes to (exposed so tests can pin the routing).
  [[nodiscard]] std::size_t shard_of(const CurveCacheKey& key) const;
  [[nodiscard]] std::size_t shard_of(const PlanCacheKey& key) const;

 private:
  // unique_ptr: PlanCache is neither movable nor copyable.
  std::vector<std::unique_ptr<PlanCache>> shards_;
};

}  // namespace jps::core
