#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.h"
#include "obs/obs.h"
#include "sched/bruteforce.h"
#include "sched/johnson.h"

namespace jps::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Number of jobs (out of n) assigned to the communication-heavy cut l*-1.
// Theorem 5.3's balance condition n1*(g(l*-1)-f(l*-1)) = n2*(f(l*)-g(l*))
// gives n1 : n2 = surplus : deficit; the paper floors that quotient into an
// integer "Ratio", which loses the mix entirely whenever the exact quotient
// is below 1.  We apply the balance directly (rounding once, at the job
// count), which is the same rule without the double truncation.
int jobs_at_l_minus(double surplus, double deficit, int n) {
  if (surplus <= 0.0 || deficit <= 0.0) return 0;
  const double fraction = surplus / (surplus + deficit);
  const int n1 = static_cast<int>(std::lround(static_cast<double>(n) * fraction));
  return std::clamp(n1, 0, n);
}

}  // namespace

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kLocalOnly: return "LO";
    case Strategy::kCloudOnly: return "CO";
    case Strategy::kPartitionOnly: return "PO";
    case Strategy::kJPS: return "JPS";
    case Strategy::kJPSTuned: return "JPS*";
    case Strategy::kJPSHull: return "JPS+";
    case Strategy::kBruteForce: return "BF";
    case Strategy::kRobust: return "ROB";
  }
  return "?";
}

ExecutionPlan assemble_plan(const partition::ProfileCurve& curve,
                            Strategy strategy,
                            const std::vector<std::size_t>& cuts) {
  sched::JobList jobs;
  jobs.reserve(cuts.size());
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = static_cast<int>(cuts[i]),
                              .f = curve.f(cuts[i]),
                              .g = curve.g(cuts[i])});
  }
  const sched::JohnsonSchedule schedule = sched::johnson_order(jobs);

  ExecutionPlan plan;
  plan.model = curve.model_name();
  plan.strategy = strategy;
  plan.comm_heavy_count = schedule.comm_heavy_count;
  plan.scheduled_jobs = sched::apply_order(jobs, schedule.order);
  plan.jobs.reserve(jobs.size());
  for (const sched::Job& job : plan.scheduled_jobs) {
    plan.jobs.push_back({job.id, static_cast<std::size_t>(job.cut)});
  }
  plan.predicted_makespan = sched::flowshop2_makespan(plan.scheduled_jobs);
  return plan;
}

Planner::Planner(partition::ProfileCurve curve, PlannerOptions options)
    : curve_(std::move(curve)), options_(options) {
  JPS_REQUIRE(curve_.size() >= 1, "a plannable curve has at least one cut");
  decision_ = partition::binary_search_cut(curve_);
}

std::size_t Planner::single_job_optimal_cut() const {
  std::size_t best = 0;
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    const double latency = curve_.f(i) + curve_.g(i);
    if (latency < best_latency) {
      best_latency = latency;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> Planner::lower_hull_cuts() const {
  // Andrew's monotone chain, lower hull only.  Cuts are already sorted by
  // ascending f; ties in f keep the later (smaller-g) point via <= pops.
  const auto cross = [&](std::size_t o, std::size_t a, std::size_t b) {
    return (curve_.f(a) - curve_.f(o)) * (curve_.g(b) - curve_.g(o)) -
           (curve_.g(a) - curve_.g(o)) * (curve_.f(b) - curve_.f(o));
  };
  std::vector<std::size_t> hull;
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), i) <= 0.0) {
      hull.pop_back();
    }
    hull.push_back(i);
  }
  return hull;
}

double two_type_makespan(double f_a, double g_a, double f_b, double g_b,
                         int n_a, int n_b) {
  // makespan = max_i (F_i + G_i) with F_i the f-prefix through job i and
  // G_i the g-suffix from job i.  Within a homogeneous run the term is
  // linear in i, so only the four run endpoints can attain the maximum.
  const double a_count = static_cast<double>(n_a);
  const double b_count = static_cast<double>(n_b);
  double best = -std::numeric_limits<double>::infinity();
  if (n_a > 0) {
    best = std::max(best, f_a + a_count * g_a + b_count * g_b);      // i = 1
    best = std::max(best, a_count * f_a + g_a + b_count * g_b);      // i = n_a
  }
  if (n_b > 0) {
    best = std::max(best, a_count * f_a + f_b + b_count * g_b);      // i = n_a+1
    best = std::max(best, a_count * f_a + b_count * f_b + g_b);      // i = n
  }
  return n_a + n_b > 0 ? best : 0.0;
}

int best_two_type_split(double f_a, double g_a, double f_b, double g_b,
                        int n_jobs) {
  int best_split = 0;
  double best_makespan = std::numeric_limits<double>::infinity();
  for (int n_a = 0; n_a <= n_jobs; ++n_a) {
    const double ms = two_type_makespan(f_a, g_a, f_b, g_b, n_a, n_jobs - n_a);
    if (ms < best_makespan) {
      best_makespan = ms;
      best_split = n_a;
    }
  }
  return best_split;
}

ExecutionPlan Planner::best_split_plan(Strategy strategy, std::size_t a,
                                       std::size_t b, int n_jobs) const {
  // The curve is monotone and a < b, so f(a) <= f(b) and g(a) >= g(b): the
  // Johnson order of any mix is "all a-jobs before all b-jobs" (a-jobs win
  // S1's ascending-f and S2's descending-g tie-breaks alike).  That fixed
  // order makes each candidate split O(1) to evaluate, and the whole sweep
  // O(n) instead of the former O(n^2 log n) of one finalize() per split.
  const int n_a = best_two_type_split(curve_.f(a), curve_.g(a), curve_.f(b),
                                      curve_.g(b), n_jobs);
  std::vector<std::size_t> cuts(static_cast<std::size_t>(n_jobs), b);
  for (int i = 0; i < n_a; ++i) cuts[static_cast<std::size_t>(i)] = a;
  return finalize(strategy, cuts);
}

ExecutionPlan Planner::finalize(Strategy strategy,
                                const std::vector<std::size_t>& cuts) const {
  return assemble_plan(curve_, strategy, cuts);
}

ExecutionPlan Planner::plan(Strategy strategy, int n_jobs) const {
  if (n_jobs < 1) throw std::invalid_argument("Planner::plan: n_jobs < 1");
  static obs::Counter& plans = obs::counter("planner.plans");
  plans.add();
  obs::Span span("planner.plan", "core");
  span.arg("strategy", strategy_name(strategy));
  span.arg("n_jobs", std::to_string(n_jobs));
  span.arg("model", curve_.model_name());
  ExecutionPlan plan = plan_impl(strategy, n_jobs);
  span.arg("makespan_ms", plan.predicted_makespan);
  JPS_ENSURE(plan.jobs.size() == static_cast<std::size_t>(n_jobs),
             "every requested job must be scheduled");
  JPS_ENSURE(std::isfinite(plan.predicted_makespan) &&
                 plan.predicted_makespan >= 0.0,
             "predicted makespan must be finite and non-negative");
  return plan;
}

ExecutionPlan Planner::plan_impl(Strategy strategy, int n_jobs) const {
  const auto start = Clock::now();
  const auto n = static_cast<std::size_t>(n_jobs);

  std::vector<std::size_t> cuts(n, 0);
  switch (strategy) {
    case Strategy::kLocalOnly:
      std::fill(cuts.begin(), cuts.end(), curve_.local_only_index());
      break;
    case Strategy::kCloudOnly:
      std::fill(cuts.begin(), cuts.end(), curve_.cloud_only_index());
      break;
    case Strategy::kPartitionOnly:
      std::fill(cuts.begin(), cuts.end(), single_job_optimal_cut());
      break;
    case Strategy::kJPS: {
      const std::size_t l_star = decision_.l_star;
      std::fill(cuts.begin(), cuts.end(), l_star);
      if (decision_.l_minus) {
        const double surplus = curve_.f(l_star) - curve_.g(l_star);
        const double deficit =
            curve_.g(*decision_.l_minus) - curve_.f(*decision_.l_minus);
        const int n_minus = jobs_at_l_minus(surplus, deficit, n_jobs);
        for (int i = 0; i < n_minus; ++i)
          cuts[static_cast<std::size_t>(i)] = *decision_.l_minus;
      }
      break;
    }
    case Strategy::kJPSTuned: {
      // The paper's pair (l*-1, l*) with the split swept exactly.
      if (!decision_.l_minus) {
        std::fill(cuts.begin(), cuts.end(), decision_.l_star);
        break;
      }
      ExecutionPlan p = best_split_plan(strategy, *decision_.l_minus,
                                        decision_.l_star, n_jobs);
      p.decision_overhead_ms = ms_since(start);
      return p;
    }
    case Strategy::kJPSHull: {
      // Mixing pair = the lower-hull-adjacent cuts bracketing f = g.
      const std::vector<std::size_t> hull = lower_hull_cuts();
      std::size_t pos = hull.size() - 1;  // first hull cut with f >= g
      for (std::size_t i = 0; i < hull.size(); ++i) {
        if (curve_.f(hull[i]) >= curve_.g(hull[i])) {
          pos = i;
          break;
        }
      }
      if (pos == 0) {
        std::fill(cuts.begin(), cuts.end(), hull.front());
        break;
      }
      ExecutionPlan p =
          best_split_plan(strategy, hull[pos - 1], hull[pos], n_jobs);
      p.decision_overhead_ms = ms_since(start);
      return p;
    }
    case Strategy::kBruteForce: {
      const std::vector<sched::CutOption> options = curve_.as_cut_options();
      sched::BruteForceResult result;
      try {
        result = sched::bruteforce_exact(options, n_jobs, options_.bf_exact_cap);
      } catch (const std::invalid_argument&) {
        result = sched::bruteforce_two_type(options, n_jobs);
      }
      for (std::size_t i = 0; i < n; ++i)
        cuts[i] = static_cast<std::size_t>(result.cuts[i]);
      break;
    }
    case Strategy::kRobust:
      throw std::invalid_argument(
          "Planner::plan: robust plans need a bandwidth interval; use "
          "core::RobustPlanner");
  }

  ExecutionPlan plan = finalize(strategy, cuts);
  plan.decision_overhead_ms = ms_since(start);
  return plan;
}

}  // namespace jps::core
