#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.h"
#include "obs/obs.h"
#include "sched/bruteforce.h"
#include "sched/johnson.h"
#include "sched/makespan.h"

namespace jps::core {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Number of jobs (out of n) assigned to the communication-heavy cut l*-1.
// Theorem 5.3's balance condition n1*(g(l*-1)-f(l*-1)) = n2*(f(l*)-g(l*))
// gives n1 : n2 = surplus : deficit; the paper floors that quotient into an
// integer "Ratio", which loses the mix entirely whenever the exact quotient
// is below 1.  We apply the balance directly (rounding once, at the job
// count), which is the same rule without the double truncation.
int jobs_at_l_minus(double surplus, double deficit, int n) {
  if (surplus <= 0.0 || deficit <= 0.0) return 0;
  const double fraction = surplus / (surplus + deficit);
  const int n1 = static_cast<int>(std::lround(static_cast<double>(n) * fraction));
  return std::clamp(n1, 0, n);
}

}  // namespace

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kLocalOnly: return "LO";
    case Strategy::kCloudOnly: return "CO";
    case Strategy::kPartitionOnly: return "PO";
    case Strategy::kJPS: return "JPS";
    case Strategy::kJPSTuned: return "JPS*";
    case Strategy::kJPSHull: return "JPS+";
    case Strategy::kBruteForce: return "BF";
    case Strategy::kRobust: return "ROB";
  }
  return "?";
}

ExecutionPlan assemble_plan(const partition::ProfileCurve& curve,
                            Strategy strategy,
                            const std::vector<std::size_t>& cuts) {
  sched::JobList jobs;
  jobs.reserve(cuts.size());
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = static_cast<int>(cuts[i]),
                              .f = curve.f(cuts[i]),
                              .g = curve.g(cuts[i])});
  }
  const sched::JohnsonSchedule schedule = sched::johnson_order(jobs);

  ExecutionPlan plan;
  plan.model = curve.model_name();
  plan.strategy = strategy;
  plan.comm_heavy_count = schedule.comm_heavy_count;
  plan.scheduled_jobs = sched::apply_order(jobs, schedule.order);
  plan.jobs.reserve(jobs.size());
  for (const sched::Job& job : plan.scheduled_jobs) {
    plan.jobs.push_back({job.id, static_cast<std::size_t>(job.cut)});
  }
  plan.refresh_lanes();
  // The lane overload is bit-identical to the Job-span recurrence; it just
  // streams two contiguous doubles per job instead of a 5-field struct.
  plan.predicted_makespan =
      sched::flowshop2_makespan(plan.f_lane, plan.g_lane);
  return plan;
}

Planner::Planner(partition::ProfileCurve curve, PlannerOptions options)
    : curve_(std::move(curve)), options_(options) {
  JPS_REQUIRE(curve_.size() >= 1, "a plannable curve has at least one cut");
  decision_ = partition::binary_search_cut(curve_);
}

std::size_t Planner::single_job_optimal_cut() const {
  std::size_t best = 0;
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    const double latency = curve_.f(i) + curve_.g(i);
    if (latency < best_latency) {
      best_latency = latency;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> Planner::lower_hull_cuts() const {
  // Andrew's monotone chain, lower hull only.  Cuts are already sorted by
  // ascending f; ties in f keep the later (smaller-g) point via <= pops.
  const auto cross = [&](std::size_t o, std::size_t a, std::size_t b) {
    return (curve_.f(a) - curve_.f(o)) * (curve_.g(b) - curve_.g(o)) -
           (curve_.g(a) - curve_.g(o)) * (curve_.f(b) - curve_.f(o));
  };
  std::vector<std::size_t> hull;
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), i) <= 0.0) {
      hull.pop_back();
    }
    hull.push_back(i);
  }
  return hull;
}

double two_type_makespan(double f_a, double g_a, double f_b, double g_b,
                         int n_a, int n_b) {
  // makespan = max_i (F_i + G_i) with F_i the f-prefix through job i and
  // G_i the g-suffix from job i.  Within a homogeneous run the term is
  // linear in i, so only the four run endpoints can attain the maximum.
  //
  // An empty run must be ignored entirely, not multiplied by a zero count:
  // the old "count * value" terms turned an unused cut's inf/NaN stages
  // into NaN, and std::max(-inf, NaN) then leaked -inf out as the result.
  const double a_count = static_cast<double>(n_a);
  const double b_count = static_cast<double>(n_b);
  if (n_a <= 0 && n_b <= 0) return 0.0;
  if (n_b <= 0)  // pure a-run: endpoints i = 1 and i = n_a
    return std::max(f_a + a_count * g_a, a_count * f_a + g_a);
  if (n_a <= 0)  // pure b-run: endpoints i = 1 and i = n_b
    return std::max(f_b + b_count * g_b, b_count * f_b + g_b);
  double best = f_a + a_count * g_a + b_count * g_b;             // i = 1
  best = std::max(best, a_count * f_a + g_a + b_count * g_b);    // i = n_a
  best = std::max(best, a_count * f_a + f_b + b_count * g_b);    // i = n_a+1
  best = std::max(best, a_count * f_a + b_count * f_b + g_b);    // i = n
  return best;
}

void two_type_makespan_batch(double f_a, std::span<const double> g_a,
                             double f_b, std::span<const double> g_b, int n_a,
                             int n_b, std::span<double> out) {
  if (g_a.size() != g_b.size() || out.size() != g_a.size())
    throw std::invalid_argument("two_type_makespan_batch: span size mismatch");
  const std::size_t samples = out.size();
  const double a_count = static_cast<double>(n_a);
  const double b_count = static_cast<double>(n_b);
  if (n_a <= 0 && n_b <= 0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // The count branches are per-candidate constants; hoisting them leaves
  // one branch-free multiply-add-max pass per case.  Every arithmetic
  // expression below keeps the scalar function's association, so out[s] is
  // bit-identical to two_type_makespan(f_a, g_a[s], f_b, g_b[s], n_a, n_b).
  if (n_b <= 0) {
    const double af = a_count * f_a;
    for (std::size_t s = 0; s < samples; ++s)
      out[s] = std::max(f_a + a_count * g_a[s], af + g_a[s]);
    return;
  }
  if (n_a <= 0) {
    const double bf = b_count * f_b;
    for (std::size_t s = 0; s < samples; ++s)
      out[s] = std::max(f_b + b_count * g_b[s], bf + g_b[s]);
    return;
  }
  const double af = a_count * f_a;
  const double af_fb = af + f_b;
  const double af_bf = af + b_count * f_b;
  for (std::size_t s = 0; s < samples; ++s) {
    const double bg = b_count * g_b[s];
    double best = f_a + a_count * g_a[s] + bg;  // i = 1
    best = std::max(best, af + g_a[s] + bg);    // i = n_a
    best = std::max(best, af_fb + bg);          // i = n_a+1
    best = std::max(best, af_bf + g_b[s]);      // i = n
    out[s] = best;
  }
}

int best_two_type_split(double f_a, double g_a, double f_b, double g_b,
                        int n_jobs) {
  int best_split = 0;
  double best_makespan = std::numeric_limits<double>::infinity();
  for (int n_a = 0; n_a <= n_jobs; ++n_a) {
    const double ms = two_type_makespan(f_a, g_a, f_b, g_b, n_a, n_jobs - n_a);
    if (ms < best_makespan) {
      best_makespan = ms;
      best_split = n_a;
    }
  }
  return best_split;
}

ExecutionPlan Planner::best_split_plan(Strategy strategy, std::size_t a,
                                       std::size_t b, int n_jobs) const {
  // The curve is monotone and a < b, so f(a) <= f(b) and g(a) >= g(b): the
  // Johnson order of any mix is "all a-jobs before all b-jobs" (a-jobs win
  // S1's ascending-f and S2's descending-g tie-breaks alike).  That fixed
  // order makes each candidate split O(1) to evaluate, and the whole sweep
  // O(n) instead of the former O(n^2 log n) of one finalize() per split.
  const int n_a = best_two_type_split(curve_.f(a), curve_.g(a), curve_.f(b),
                                      curve_.g(b), n_jobs);
  std::vector<std::size_t> cuts(static_cast<std::size_t>(n_jobs), b);
  for (int i = 0; i < n_a; ++i) cuts[static_cast<std::size_t>(i)] = a;
  return finalize(strategy, cuts);
}

ExecutionPlan Planner::finalize(Strategy strategy,
                                const std::vector<std::size_t>& cuts) const {
  return assemble_plan(curve_, strategy, cuts);
}

ExecutionPlan Planner::plan(Strategy strategy, int n_jobs) const {
  if (n_jobs < 1) throw std::invalid_argument("Planner::plan: n_jobs < 1");
  static obs::Counter& plans = obs::counter("planner.plans");
  plans.add();
  obs::Span span("planner.plan", "core");
  span.arg("strategy", strategy_name(strategy));
  span.arg("n_jobs", std::to_string(n_jobs));
  span.arg("model", curve_.model_name());
  ExecutionPlan plan = plan_impl(strategy, n_jobs);
  span.arg("makespan_ms", plan.predicted_makespan);
  JPS_ENSURE(plan.jobs.size() == static_cast<std::size_t>(n_jobs),
             "every requested job must be scheduled");
  JPS_ENSURE(std::isfinite(plan.predicted_makespan) &&
                 plan.predicted_makespan >= 0.0,
             "predicted makespan must be finite and non-negative");
  return plan;
}

ExecutionPlan Planner::plan_impl(Strategy strategy, int n_jobs) const {
  const auto start = Clock::now();
  const auto n = static_cast<std::size_t>(n_jobs);

  std::vector<std::size_t> cuts(n, 0);
  switch (strategy) {
    case Strategy::kLocalOnly:
      std::fill(cuts.begin(), cuts.end(), curve_.local_only_index());
      break;
    case Strategy::kCloudOnly:
      std::fill(cuts.begin(), cuts.end(), curve_.cloud_only_index());
      break;
    case Strategy::kPartitionOnly:
      std::fill(cuts.begin(), cuts.end(), single_job_optimal_cut());
      break;
    case Strategy::kJPS: {
      const std::size_t l_star = decision_.l_star;
      std::fill(cuts.begin(), cuts.end(), l_star);
      if (decision_.l_minus) {
        const double surplus = curve_.f(l_star) - curve_.g(l_star);
        const double deficit =
            curve_.g(*decision_.l_minus) - curve_.f(*decision_.l_minus);
        const int n_minus = jobs_at_l_minus(surplus, deficit, n_jobs);
        for (int i = 0; i < n_minus; ++i)
          cuts[static_cast<std::size_t>(i)] = *decision_.l_minus;
      }
      break;
    }
    case Strategy::kJPSTuned: {
      // The paper's pair (l*-1, l*) with the split swept exactly.
      if (!decision_.l_minus) {
        std::fill(cuts.begin(), cuts.end(), decision_.l_star);
        break;
      }
      ExecutionPlan p = best_split_plan(strategy, *decision_.l_minus,
                                        decision_.l_star, n_jobs);
      p.decision_overhead_ms = ms_since(start);
      return p;
    }
    case Strategy::kJPSHull: {
      // Mixing pair = the lower-hull-adjacent cuts bracketing f = g.
      const std::vector<std::size_t> hull = lower_hull_cuts();
      std::size_t pos = hull.size() - 1;  // first hull cut with f >= g
      for (std::size_t i = 0; i < hull.size(); ++i) {
        if (curve_.f(hull[i]) >= curve_.g(hull[i])) {
          pos = i;
          break;
        }
      }
      if (pos == 0) {
        std::fill(cuts.begin(), cuts.end(), hull.front());
        break;
      }
      ExecutionPlan p =
          best_split_plan(strategy, hull[pos - 1], hull[pos], n_jobs);
      p.decision_overhead_ms = ms_since(start);
      return p;
    }
    case Strategy::kBruteForce: {
      const std::vector<sched::CutOption> options = curve_.as_cut_options();
      sched::BruteForceResult result;
      try {
        result = sched::bruteforce_exact(options, n_jobs, options_.bf_exact_cap);
      } catch (const std::invalid_argument&) {
        result = sched::bruteforce_two_type(options, n_jobs);
      }
      for (std::size_t i = 0; i < n; ++i)
        cuts[i] = static_cast<std::size_t>(result.cuts[i]);
      break;
    }
    case Strategy::kRobust:
      throw std::invalid_argument(
          "Planner::plan: robust plans need a bandwidth interval; use "
          "core::RobustPlanner");
  }

  ExecutionPlan plan = finalize(strategy, cuts);
  plan.decision_overhead_ms = ms_since(start);
  return plan;
}

namespace {

/// One sweep point's decision: the two-type mix (a, b, n_a).
struct SweepDecision {
  std::size_t cut_a = 0;
  std::size_t cut_b = 0;
  int n_a = 0;
};

// The scalar planner's decision logic re-expressed over (f, g) lanes.  Each
// helper mirrors its ProfileCurve/Planner counterpart operation-for-
// operation so the sweep's choices match the per-point scalar path exactly
// (the plan_sweep differential suite pins this).

// binary_search_cut's loop: leftmost index with f >= g on a monotone curve.
std::size_t lane_l_star(std::span<const double> f, std::span<const double> g) {
  std::size_t lo = 0;
  std::size_t hi = f.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (f[mid] < g[mid]) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Planner::single_job_optimal_cut: first argmin of f + g.
std::size_t lane_po_cut(std::span<const double> f, std::span<const double> g) {
  std::size_t best = 0;
  double best_latency = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double latency = f[i] + g[i];
    if (latency < best_latency) {
      best_latency = latency;
      best = i;
    }
  }
  return best;
}

// Planner::lower_hull_cuts: Andrew's monotone chain, lower hull only.
void lane_lower_hull(std::span<const double> f, std::span<const double> g,
                     std::vector<std::size_t>& hull) {
  const auto cross = [&](std::size_t o, std::size_t a, std::size_t b) {
    return (f[a] - f[o]) * (g[b] - g[o]) - (g[a] - g[o]) * (f[b] - f[o]);
  };
  hull.clear();
  for (std::size_t i = 0; i < f.size(); ++i) {
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), i) <= 0.0) {
      hull.pop_back();
    }
    hull.push_back(i);
  }
}

SweepDecision lane_decide(Strategy strategy, int n_jobs,
                          std::span<const double> f, std::span<const double> g,
                          std::vector<std::size_t>& hull_scratch) {
  SweepDecision d;
  switch (strategy) {
    case Strategy::kLocalOnly:
      d.cut_a = d.cut_b = f.size() - 1;
      break;
    case Strategy::kCloudOnly:
      d.cut_a = d.cut_b = 0;
      break;
    case Strategy::kPartitionOnly:
      d.cut_a = d.cut_b = lane_po_cut(f, g);
      break;
    case Strategy::kJPS: {
      const std::size_t l_star = lane_l_star(f, g);
      d.cut_a = d.cut_b = l_star;
      if (l_star > 0) {
        d.cut_a = l_star - 1;
        const double surplus = f[l_star] - g[l_star];
        const double deficit = g[l_star - 1] - f[l_star - 1];
        d.n_a = jobs_at_l_minus(surplus, deficit, n_jobs);
      }
      break;
    }
    case Strategy::kJPSTuned: {
      const std::size_t l_star = lane_l_star(f, g);
      d.cut_a = d.cut_b = l_star;
      if (l_star > 0) {
        d.cut_a = l_star - 1;
        d.n_a = best_two_type_split(f[d.cut_a], g[d.cut_a], f[d.cut_b],
                                    g[d.cut_b], n_jobs);
      }
      break;
    }
    case Strategy::kJPSHull: {
      lane_lower_hull(f, g, hull_scratch);
      std::size_t pos = hull_scratch.size() - 1;
      for (std::size_t i = 0; i < hull_scratch.size(); ++i) {
        if (f[hull_scratch[i]] >= g[hull_scratch[i]]) {
          pos = i;
          break;
        }
      }
      if (pos == 0) {
        d.cut_a = d.cut_b = hull_scratch.front();
        break;
      }
      d.cut_a = hull_scratch[pos - 1];
      d.cut_b = hull_scratch[pos];
      d.n_a = best_two_type_split(f[d.cut_a], g[d.cut_a], f[d.cut_b],
                                  g[d.cut_b], n_jobs);
      break;
    }
    case Strategy::kBruteForce:
    case Strategy::kRobust:
      throw std::invalid_argument(
          "Planner::plan_sweep: strategy is not O(cuts) per point; use "
          "plan() / RobustPlanner");
  }
  return d;
}

}  // namespace

PlanSweep Planner::plan_sweep(Strategy strategy, int n_jobs,
                              std::span<const double> bandwidths,
                              const net::Channel& channel) const {
  if (n_jobs < 1)
    throw std::invalid_argument("Planner::plan_sweep: n_jobs < 1");
  if (strategy == Strategy::kBruteForce || strategy == Strategy::kRobust)
    throw std::invalid_argument(
        "Planner::plan_sweep: strategy is not O(cuts) per point; use "
        "plan() / RobustPlanner");
  for (const double mbps : bandwidths) {
    if (!std::isfinite(mbps) || mbps <= 0.0)
      throw std::invalid_argument(
          "Planner::plan_sweep: bandwidth must be finite and > 0");
  }
  static obs::Counter& sweeps = obs::counter("planner.plan_sweeps");
  sweeps.add();
  static obs::Counter& points = obs::counter("planner.plan_sweep_points");
  points.add(bandwidths.size());
  obs::Span span("planner.plan_sweep", "core");
  span.arg("strategy", strategy_name(strategy));
  span.arg("n_jobs", std::to_string(n_jobs));
  span.arg("points", std::to_string(bandwidths.size()));
  span.arg("model", curve_.model_name());

  const std::span<const double> f = curve_.f_lane();
  const std::span<const std::uint64_t> bytes = curve_.offload_bytes_lane();
  const std::size_t cuts = curve_.size();

  PlanSweep sweep;
  sweep.strategy = strategy;
  sweep.n_jobs = n_jobs;
  sweep.bandwidth_mbps.assign(bandwidths.begin(), bandwidths.end());
  sweep.makespan_ms.resize(bandwidths.size());
  sweep.cut_a.resize(bandwidths.size());
  sweep.cut_b.resize(bandwidths.size());
  sweep.n_a.resize(bandwidths.size());

  std::vector<double> g(cuts);  // per-point comm lane, reused across points
  std::vector<std::size_t> hull_scratch;
  for (std::size_t p = 0; p < bandwidths.size(); ++p) {
    // Re-derive g at this rate exactly as ProfileCurve::with_bandwidth does
    // (same Channel::time_ms call on the same bytes), so every comparison
    // below sees the same doubles the scalar path would.
    const net::Channel at_rate = channel.with_bandwidth(bandwidths[p]);
    for (std::size_t i = 0; i < cuts; ++i)
      g[i] = bytes[i] > 0 ? at_rate.time_ms(bytes[i]) : 0.0;
    // Parity with the scalar path's constructor-time monotonicity check
    // (an affine rebase preserves monotonicity, but a custom-built curve
    // may not start monotone).
    for (std::size_t i = 1; i < cuts; ++i) {
      if (f[i] < f[i - 1] || g[i] > g[i - 1])
        throw std::invalid_argument(
            "Planner::plan_sweep: curve is not monotone at this bandwidth; "
            "cluster it first");
    }
    const SweepDecision d = lane_decide(strategy, n_jobs, f, g, hull_scratch);
    sweep.cut_a[p] = d.cut_a;
    sweep.cut_b[p] = d.cut_b;
    sweep.n_a[p] = d.n_a;
    // The Johnson order of any such mix is "all a-jobs before all b-jobs"
    // (see best_split_plan), so the exact recurrence over the two runs
    // reproduces finalize()'s flowshop2_makespan bit-for-bit.
    sweep.makespan_ms[p] = sched::two_type_flowshop2_makespan(
        f[d.cut_a], g[d.cut_a], d.n_a, f[d.cut_b], g[d.cut_b],
        n_jobs - d.n_a);
  }
  return sweep;
}

ExecutionPlan Planner::materialize(const PlanSweep& sweep, std::size_t k,
                                   const net::Channel& channel) const {
  if (k >= sweep.size())
    throw std::out_of_range("Planner::materialize: point out of range");
  const partition::ProfileCurve rebased =
      curve_.with_bandwidth(channel, sweep.bandwidth_mbps[k]);
  std::vector<std::size_t> cuts(static_cast<std::size_t>(sweep.n_jobs),
                                sweep.cut_b[k]);
  for (int i = 0; i < sweep.n_a[k]; ++i)
    cuts[static_cast<std::size_t>(i)] = sweep.cut_a[k];
  ExecutionPlan plan = assemble_plan(rebased, sweep.strategy, cuts);
  JPS_ENSURE(plan.predicted_makespan == sweep.makespan_ms[k],
             "materialized plan must reproduce the sweep makespan "
             "bit-for-bit");
  return plan;
}

}  // namespace jps::core
