// The joint partition + scheduling planner (the paper's primary
// contribution) and the comparison strategies of §6.2.
//
// A Planner is bound to one ProfileCurve — i.e. one model on one device pair
// over one channel.  plan(strategy, n) partitions n identical jobs and
// orders them with Johnson's rule (Alg. 1):
//
//   LO   — every job at the local-only cut.
//   CO   — every job at the cloud-only cut.
//   PO   — the state-of-the-art single-DNN partition [Hu et al. 2019 /
//          Neurosurgeon]: the cut minimizing a single job's latency
//          f(l) + g(l), applied homogeneously; no pipeline-aware mixing.
//   JPS  — Alg. 2's binary search for (l*-1, l*) and the Theorem 5.3 floor
//          ratio between the two cut types.
//   JPS* — same two cut types, but the split is swept exactly (the Fig. 14
//          tuning knob); never worse than JPS.
//   JPS+ — our extension: the mixing pair is chosen adjacent on the LOWER
//          CONVEX HULL of the curve's (f, g) points rather than adjacent in
//          index.  Theorem 5.2's continuous argument optimizes
//          max(avg f, avg g) over mixtures, whose optimum mixes the two
//          hull vertices bracketing the f = g balance; when f is linear and
//          g convex (the paper's §3.2 shapes) every cut lies on the hull
//          and JPS+ == JPS*.  On coarse real curves (few clustered cuts),
//          index-adjacent pairs can be strictly dominated — e.g. a
//          CO + LO endpoint mix — and JPS+ recovers the BF optimum.
//   BF   — brute force: exact multiset enumeration when tractable,
//          otherwise all two-cut-type assignments (see sched/bruteforce.h).
#pragma once

#include <cstdint>
#include <span>

#include "core/plan.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/profile_curve.h"

namespace jps::core {

/// Planner tuning knobs.
struct PlannerOptions {
  /// BF switches from exact multiset enumeration to the two-type search
  /// above this many assignments.
  std::uint64_t bf_exact_cap = 2'000'000;
};

/// Makespan of the two-cut-type schedule "n_a jobs at (f_a, g_a) then n_b
/// jobs at (f_b, g_b)" in O(1), via the permutation-flow-shop identity
///   makespan = max_i ( sum_{k<=i} f_k + sum_{k>=i} g_k ),
/// whose inner maximum over each homogeneous run is attained at a run
/// endpoint.  This is exactly flowshop2_makespan of that job sequence
/// (up to floating-point association).
///
/// PRECONDITION: the endpoint reduction is exact ONLY for this two-type
/// comm-heavy-before-comp-heavy shape (within a homogeneous run the
/// critical-path term is linear in i, so interior positions never dominate
/// their run's endpoints).  For an arbitrary job order interior terms can
/// dominate — evaluate sched::closed_form_makespan (the full identity)
/// instead.  The planner only calls this from best_split_plan, whose
/// Johnson order on a monotone curve guarantees the shape; the differential
/// tests in tests/core/planner_test.cpp cross-check the resulting plans
/// against the discrete-event simulator.
///
/// An empty run is ignored entirely: its (f, g) pair is never read, so a
/// degenerate cut (e.g. an infinite g from a zero-bandwidth probe) offered
/// as the UNUSED type cannot contaminate the result, and the partial
/// maximum can never escape as -inf.  Non-positive counts are empty runs;
/// both empty returns 0.
[[nodiscard]] double two_type_makespan(double f_a, double g_a, double f_b,
                                       double g_b, int n_a, int n_b);

/// Batched two_type_makespan over per-sample g lanes: out[s] is exactly
/// two_type_makespan(f_a, g_a[s], f_b, g_b[s], n_a, n_b) — bit-identical;
/// the count branches are hoisted out of the sample loop so each case is a
/// tight vectorizable pass.  This is RobustPlanner's inner kernel: one
/// candidate (pair, split) scored across the whole bandwidth grid per call.
/// Throws std::invalid_argument when the spans disagree in length.
void two_type_makespan_batch(double f_a, std::span<const double> g_a,
                             double f_b, std::span<const double> g_b, int n_a,
                             int n_b, std::span<double> out);

/// The split n_a (jobs at cut a; the remaining n - n_a sit at cut b)
/// minimizing two_type_makespan, with the smallest minimizing n_a winning
/// ties.  O(n).  Requires cut a to precede cut b on a monotone curve
/// (f_a <= f_b, g_a >= g_b), which pins the Johnson order to "all a-jobs
/// before all b-jobs" for every split.
[[nodiscard]] int best_two_type_split(double f_a, double g_a, double f_b,
                                      double g_b, int n_jobs);

/// Assemble, Johnson-order and evaluate a plan from per-job cut indices
/// into `curve`.  Shared by Planner::finalize, the robust planner and the
/// fault-aware replanning hook.
[[nodiscard]] ExecutionPlan assemble_plan(const partition::ProfileCurve& curve,
                                          Strategy strategy,
                                          const std::vector<std::size_t>& cuts);

/// Structure-of-arrays result of Planner::plan_sweep: lane entry k is the
/// plan decision at bandwidth_mbps[k].  Every strategy this planner family
/// produces is a two-cut-type mix, so (cut_a, cut_b, n_a) describes a whole
/// plan: the first n_a jobs sit at cut_a, the remaining n_jobs - n_a at
/// cut_b (cut_a == cut_b with n_a == 0 for a pure plan).  makespan_ms[k]
/// is bit-identical to what Planner(curve.with_bandwidth(channel, b_k))
/// .plan(strategy, n_jobs).predicted_makespan would compute; use
/// Planner::materialize to expand a lane into that full ExecutionPlan.
struct PlanSweep {
  Strategy strategy = Strategy::kJPS;
  int n_jobs = 0;
  std::vector<double> bandwidth_mbps;
  std::vector<double> makespan_ms;
  std::vector<std::size_t> cut_a;
  std::vector<std::size_t> cut_b;
  std::vector<int> n_a;

  [[nodiscard]] std::size_t size() const { return bandwidth_mbps.size(); }
};

class Planner {
 public:
  /// The curve must be monotone (built with clustering on).
  explicit Planner(partition::ProfileCurve curve, PlannerOptions options = {});

  /// Plan `n_jobs` identical jobs with the given strategy.
  /// Throws std::invalid_argument for n_jobs < 1.
  [[nodiscard]] ExecutionPlan plan(Strategy strategy, int n_jobs) const;

  /// Batched bandwidth sweep: decide the plan for `n_jobs` at every rate in
  /// `bandwidths` in ONE pass over the curve's SoA lanes, without building
  /// a rebased ProfileCurve, a Planner, or an ExecutionPlan per point.
  /// `channel` supplies the affine comm model (setup latency, jitter) that
  /// is re-based to each rate, exactly as ProfileCurve::with_bandwidth
  /// does, so lane k reproduces
  ///   Planner(curve().with_bandwidth(channel, bandwidths[k]))
  ///       .plan(strategy, n_jobs)
  /// bit-for-bit in cuts, order and makespan (the differential suite in
  /// tests/core/plan_sweep_test.cpp pins this).  This is the hot path of
  /// the fig13/fig14 sweeps and any per-request planning service: the f
  /// and offload-bytes lanes are hoisted once, and each point costs one
  /// O(cuts + n_jobs) lane scan.
  ///
  /// Supported strategies: LO, CO, PO, JPS, JPS*, JPS+.  Throws
  /// std::invalid_argument for n_jobs < 1, for kBruteForce/kRobust (they
  /// are not O(cuts) per point; call plan()/RobustPlanner instead), or for
  /// a non-finite or non-positive bandwidth.
  [[nodiscard]] PlanSweep plan_sweep(Strategy strategy, int n_jobs,
                                     std::span<const double> bandwidths,
                                     const net::Channel& channel) const;

  /// Expand lane `k` of a sweep into the full ExecutionPlan the scalar path
  /// would have produced at that bandwidth (same cuts, same Johnson order,
  /// bit-identical makespan).  Costs one curve rebase + assemble_plan; use
  /// it for the points you actually execute, not for the whole sweep.
  [[nodiscard]] ExecutionPlan materialize(const PlanSweep& sweep,
                                          std::size_t k,
                                          const net::Channel& channel) const;

  /// The Alg. 2 decision for this curve (exposed for benches/tests).
  [[nodiscard]] const partition::CutDecision& decision() const {
    return decision_;
  }

  [[nodiscard]] const partition::ProfileCurve& curve() const { return curve_; }

  /// The PO cut: argmin over cuts of single-job latency f + g.
  [[nodiscard]] std::size_t single_job_optimal_cut() const;

  /// Indices of the cuts on the lower convex hull of the (f, g) point set,
  /// in ascending f order (always includes the first and last cut).
  [[nodiscard]] std::vector<std::size_t> lower_hull_cuts() const;

 private:
  /// Best split of n jobs between cuts `a` and `b` (a < b on the monotone
  /// curve): O(n) sweep via best_two_type_split, then one finalize().
  [[nodiscard]] ExecutionPlan best_split_plan(Strategy strategy, std::size_t a,
                                              std::size_t b, int n_jobs) const;

  /// Assemble, order (Johnson) and evaluate a plan from per-job cut indices.
  [[nodiscard]] ExecutionPlan finalize(Strategy strategy,
                                       const std::vector<std::size_t>& cuts) const;

  /// The uninstrumented planning body; plan() wraps it in an obs::Span.
  [[nodiscard]] ExecutionPlan plan_impl(Strategy strategy, int n_jobs) const;

  partition::ProfileCurve curve_;
  PlannerOptions options_;
  partition::CutDecision decision_;
};

}  // namespace jps::core
