#include "core/alg3_planner.h"

#include <algorithm>
#include <stdexcept>

#include "sched/job.h"
#include "sched/johnson.h"
#include "sched/makespan.h"

namespace jps::core {

Alg3Plan plan_alg3(const dnn::Graph& graph,
                   const partition::NodeTimeFn& mobile_time,
                   const partition::CommTimeFn& comm_time, int n_jobs,
                   std::size_t max_paths) {
  if (n_jobs < 1) throw std::invalid_argument("plan_alg3: n_jobs < 1");

  const std::vector<partition::PathCut> path_cuts =
      partition::alg3_path_cuts(graph, mobile_time, comm_time, max_paths);

  Alg3Plan plan;
  plan.paths_per_job = path_cuts.size();

  // One unit per (job, path); ordering values carry the duplicates.
  sched::JobList ordering_jobs;
  std::vector<PathUnit> units;
  const auto n = static_cast<std::size_t>(n_jobs);
  ordering_jobs.reserve(n * path_cuts.size());
  units.reserve(n * path_cuts.size());
  for (int job = 0; job < n_jobs; ++job) {
    for (const partition::PathCut& cut : path_cuts) {
      PathUnit unit;
      unit.job_id = job;
      unit.path_index = cut.path_index;
      unit.f_dup = cut.f_dup;
      unit.g_dup = cut.g_dup;
      ordering_jobs.push_back(sched::Job{
          .id = static_cast<int>(units.size()),
          .cut = static_cast<int>(cut.path_index),
          .f = cut.f_dup,
          .g = cut.g_dup});
      units.push_back(unit);
    }
  }

  const sched::JohnsonSchedule schedule = sched::johnson_order(ordering_jobs);

  // Walk the order, de-duplicating per job: a node executes (and a cut
  // tensor ships) only the first time a unit of that job needs it.
  std::vector<std::vector<char>> executed(
      n, std::vector<char>(graph.size(), 0));
  std::vector<std::vector<char>> shipped(n, std::vector<char>(graph.size(), 0));

  plan.units.reserve(units.size());
  sched::JobList actual_jobs;
  sched::JobList dup_jobs;
  actual_jobs.reserve(units.size());
  dup_jobs.reserve(units.size());
  for (const std::size_t idx : schedule.order) {
    PathUnit unit = units[idx];
    const partition::PathCut& cut = path_cuts[unit.path_index];
    auto& done = executed[static_cast<std::size_t>(unit.job_id)];
    auto& sent = shipped[static_cast<std::size_t>(unit.job_id)];

    double f_actual = 0.0;
    for (const dnn::NodeId v : cut.local_nodes) {
      if (!done[v]) {
        done[v] = 1;
        f_actual += mobile_time(v);
      }
    }
    double g_actual = 0.0;
    if (cut.cut_node && !sent[*cut.cut_node]) {
      sent[*cut.cut_node] = 1;
      g_actual = comm_time(graph.info(*cut.cut_node).output_bytes);
    }
    unit.f_actual = f_actual;
    unit.g_actual = g_actual;

    actual_jobs.push_back(sched::Job{.id = unit.job_id,
                                     .cut = static_cast<int>(unit.path_index),
                                     .f = f_actual,
                                     .g = g_actual});
    dup_jobs.push_back(sched::Job{.id = unit.job_id,
                                  .cut = static_cast<int>(unit.path_index),
                                  .f = unit.f_dup,
                                  .g = unit.g_dup});
    plan.units.push_back(unit);
  }

  plan.makespan = sched::flowshop2_makespan(actual_jobs);
  plan.makespan_dup = sched::flowshop2_makespan(dup_jobs);
  return plan;
}

}  // namespace jps::core
