#include "core/ratio.h"

#include <limits>
#include <stdexcept>

#include "sched/bruteforce.h"

namespace jps::core {

std::vector<RatioPoint> sweep_type_ratio(const partition::ProfileCurve& curve,
                                         std::size_t cut_comm,
                                         std::size_t cut_comp, int n_jobs) {
  if (cut_comm >= curve.size() || cut_comp >= curve.size())
    throw std::invalid_argument("sweep_type_ratio: cut index out of range");
  if (n_jobs < 2) throw std::invalid_argument("sweep_type_ratio: n_jobs < 2");

  const std::vector<sched::CutOption> options = curve.as_cut_options();
  std::vector<RatioPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(n_jobs - 1));
  std::vector<int> assignment(static_cast<std::size_t>(n_jobs));
  for (int n_comm = 1; n_comm < n_jobs; ++n_comm) {
    for (int i = 0; i < n_jobs; ++i)
      assignment[static_cast<std::size_t>(i)] =
          i < n_comm ? static_cast<int>(cut_comm) : static_cast<int>(cut_comp);
    RatioPoint point;
    point.n_comm_heavy = n_comm;
    point.n_comp_heavy = n_jobs - n_comm;
    point.ratio = static_cast<double>(point.n_comp_heavy) /
                  static_cast<double>(point.n_comm_heavy);
    point.makespan = sched::assignment_makespan(options, assignment);
    sweep.push_back(point);
  }
  return sweep;
}

RatioPoint best_ratio(const std::vector<RatioPoint>& sweep) {
  if (sweep.empty())
    throw std::invalid_argument("best_ratio: empty sweep");
  RatioPoint best;
  best.makespan = std::numeric_limits<double>::infinity();
  for (const RatioPoint& p : sweep) {
    if (p.makespan < best.makespan) best = p;
  }
  return best;
}

}  // namespace jps::core
