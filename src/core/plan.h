// Execution plans: the output of every planning strategy.
#pragma once

#include <string>
#include <vector>

#include "partition/profile_curve.h"
#include "sched/job.h"
#include "sched/makespan.h"

namespace jps::core {

/// The strategies the paper compares (§6.2) plus this repo's extensions.
enum class Strategy {
  kLocalOnly,    // LO: everything on the mobile device
  kCloudOnly,    // CO: upload raw inputs, everything on the cloud
  kPartitionOnly,// PO: single-job optimal cut, same for all jobs, no pipeline-aware mixing
  kJPS,          // the paper's joint partition + scheduling (Alg. 2 ratio)
  kJPSTuned,     // JPS with the split between the two cut types swept exactly
  kJPSHull,      // extension: pick the pair adjacent on the lower convex
                 // hull of the (f, g) points instead of index-adjacent; on
                 // fine convex curves (the paper's assumption) the two
                 // coincide, on coarse curves the hull pair is optimal
  kBruteForce,   // exact or two-type brute force (§6.2's BF)
  kRobust,       // extension: uncertainty-aware mix minimizing worst-case /
                 // CVaR makespan over a bandwidth interval (core/robust.h);
                 // produced by RobustPlanner, not Planner::plan
};

/// Display name ("LO", "CO", "PO", "JPS", "JPS*", "JPS+", "BF", "ROB").
[[nodiscard]] const char* strategy_name(Strategy s);

/// One job's slice of a plan.
struct JobAssignment {
  int job_id = 0;
  /// Cut index into the plan's curve.
  std::size_t cut_index = 0;

  friend bool operator==(const JobAssignment&, const JobAssignment&) = default;
};

/// A complete partition + schedule for n identical jobs.
struct ExecutionPlan {
  std::string model;
  Strategy strategy = Strategy::kJPS;
  /// Jobs in scheduled (processing) order.
  std::vector<JobAssignment> jobs;
  /// Stage lengths of each scheduled job (same order as `jobs`).
  sched::JobList scheduled_jobs;
  /// SoA mirrors of scheduled_jobs[i].f / .g: the contiguous lanes the
  /// branch-light makespan kernels iterate (sched::flowshop2_makespan /
  /// closed_form_makespan span overloads).  Kept in sync by refresh_lanes();
  /// assemble_plan and the plan parser maintain them, so they are valid on
  /// every plan those paths produce.
  std::vector<double> f_lane;
  std::vector<double> g_lane;
  /// Number of leading communication-heavy jobs in the order (Johnson S1).
  std::size_t comm_heavy_count = 0;
  /// Makespan of the plan under the 2-stage flow-shop recurrence, ms.
  double predicted_makespan = 0.0;
  /// Wall-clock time the planner itself took (Fig. 12(d) overhead), ms.
  double decision_overhead_ms = 0.0;

  /// Rebuild f_lane/g_lane from scheduled_jobs (call after mutating it).
  void refresh_lanes() {
    f_lane.resize(scheduled_jobs.size());
    g_lane.resize(scheduled_jobs.size());
    for (std::size_t i = 0; i < scheduled_jobs.size(); ++i) {
      f_lane[i] = scheduled_jobs[i].f;
      g_lane[i] = scheduled_jobs[i].g;
    }
  }

  /// Per-job stage timelines (computed from scheduled_jobs on demand).
  [[nodiscard]] std::vector<sched::JobTimeline> timeline() const {
    return sched::flowshop2_timeline(scheduled_jobs);
  }

  /// Average completion per job, ms.
  [[nodiscard]] double makespan_per_job() const {
    return jobs.empty() ? 0.0
                        : predicted_makespan / static_cast<double>(jobs.size());
  }
};

}  // namespace jps::core
