#include "core/plan_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <utility>

#include "check/contracts.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace jps::core {

namespace {

// -0.0 == 0.0 but the two differ in bit pattern, so hashing the raw bits
// would split one logical key across two buckets; NaN is worse — it is
// unequal even to itself, so a NaN-keyed entry could never be found again
// and would silently poison the table.  Both key types funnel their
// bandwidth through here at construction.
double canonical_bandwidth(double mbps) {
  JPS_REQUIRE(std::isfinite(mbps),
              "cache keys need a finite bandwidth: a NaN key is unequal to "
              "itself and would poison the table");
  return mbps == 0.0 ? 0.0 : mbps;
}

}  // namespace

CurveCacheKey::CurveCacheKey(std::string model, std::string device,
                             double bandwidth_mbps)
    : model(std::move(model)),
      device(std::move(device)),
      bandwidth_mbps(canonical_bandwidth(bandwidth_mbps)) {}

PlanCacheKey::PlanCacheKey(std::string model, std::string device,
                           double bandwidth_mbps, Strategy strategy,
                           int n_jobs)
    : model(std::move(model)),
      device(std::move(device)),
      bandwidth_mbps(canonical_bandwidth(bandwidth_mbps)),
      strategy(strategy),
      n_jobs(n_jobs) {}

namespace {

// Registry-side mirrors of the Stats counters so `--metrics` and trace
// dumps see cache behaviour alongside every other subsystem.
obs::Counter& curve_hit_counter() {
  static obs::Counter& c = obs::counter("plan_cache.curve_hits");
  return c;
}
obs::Counter& curve_miss_counter() {
  static obs::Counter& c = obs::counter("plan_cache.curve_misses");
  return c;
}
obs::Counter& plan_hit_counter() {
  static obs::Counter& c = obs::counter("plan_cache.plan_hits");
  return c;
}
obs::Counter& plan_miss_counter() {
  static obs::Counter& c = obs::counter("plan_cache.plan_misses");
  return c;
}

// Distribution of the probe itself (shared-lock find; build time excluded)
// and the live hit ratio across both tables.
obs::Histogram& lookup_histogram() {
  static obs::Histogram& h = obs::histogram("plan_cache.lookup_ms");
  return h;
}
obs::Gauge& hit_ratio_gauge() {
  static obs::Gauge& g = obs::gauge("plan_cache.hit_ratio");
  return g;
}

}  // namespace

namespace {

// splitmix64-style combine; good avalanche for composite keys.
std::size_t hash_combine(std::size_t seed, std::size_t value) {
  value += 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
  value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9ull;
  return seed ^ (value ^ (value >> 27));
}

std::size_t hash_double(double x) {
  // Key construction already canonicalized -0.0 and rejected non-finite
  // values; normalize again here so even a key whose field was mutated
  // after construction hashes consistently with operator==.
  if (x == 0.0) x = 0.0;
  return std::hash<std::uint64_t>{}(std::bit_cast<std::uint64_t>(x));
}

}  // namespace

std::size_t PlanCache::CurveKeyHash::operator()(
    const CurveCacheKey& k) const {
  std::size_t h = std::hash<std::string>{}(k.model);
  h = hash_combine(h, std::hash<std::string>{}(k.device));
  h = hash_combine(h, hash_double(k.bandwidth_mbps));
  return h;
}

std::size_t PlanCache::PlanKeyHash::operator()(const PlanCacheKey& k) const {
  std::size_t h = std::hash<std::string>{}(k.model);
  h = hash_combine(h, std::hash<std::string>{}(k.device));
  h = hash_combine(h, hash_double(k.bandwidth_mbps));
  h = hash_combine(h, static_cast<std::size_t>(k.strategy));
  h = hash_combine(h, static_cast<std::size_t>(k.n_jobs));
  return h;
}

std::shared_ptr<const partition::ProfileCurve> PlanCache::curve(
    const CurveCacheKey& key, const CurveBuilder& build) {
  {
    obs::ScopedTimer probe(lookup_histogram());
    util::SharedLock lock(mutex_);
    const auto it = curves_.find(key);
    if (it != curves_.end()) {
      curve_hits_.fetch_add(1, std::memory_order_relaxed);
      curve_hit_counter().add();
      hit_ratio_gauge().set(stats().hit_rate());
      return it->second;
    }
  }
  curve_misses_.fetch_add(1, std::memory_order_relaxed);
  curve_miss_counter().add();
  hit_ratio_gauge().set(stats().hit_rate());
  // Build outside the lock: curve construction walks the DNN graph and must
  // not serialize concurrent misses for unrelated keys.
  auto built = std::make_shared<const partition::ProfileCurve>(build());
  util::MutexLock lock(mutex_);
  const auto [it, inserted] = curves_.emplace(key, std::move(built));
  return it->second;  // first insert wins for racing builders
}

std::shared_ptr<const ExecutionPlan> PlanCache::plan(const PlanCacheKey& key,
                                                     const PlanBuilder& build) {
  {
    obs::ScopedTimer probe(lookup_histogram());
    util::SharedLock lock(mutex_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      plan_hit_counter().add();
      hit_ratio_gauge().set(stats().hit_rate());
      return it->second;
    }
  }
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  plan_miss_counter().add();
  hit_ratio_gauge().set(stats().hit_rate());
  auto built = std::make_shared<const ExecutionPlan>(build());
  util::MutexLock lock(mutex_);
  const auto [it, inserted] = plans_.emplace(key, std::move(built));
  return it->second;
}

void PlanCache::insert_plan(const PlanCacheKey& key,
                            std::shared_ptr<const ExecutionPlan> plan) {
  if (!plan) return;
  util::MutexLock lock(mutex_);
  plans_.emplace(key, std::move(plan));  // first insert wins
}

std::vector<PlanCache::PlanEntry> PlanCache::plan_entries() const {
  util::SharedLock lock(mutex_);
  std::vector<PlanEntry> out;
  out.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) out.emplace_back(key, plan);
  return out;
}

std::shared_ptr<const ExecutionPlan> PlanCache::nearest_plan(
    const PlanCacheKey& want, double* bandwidth_out) const {
  util::SharedLock lock(mutex_);
  std::shared_ptr<const ExecutionPlan> best;
  double best_bw = 0.0;
  for (const auto& [key, plan] : plans_) {
    if (key.model != want.model || key.device != want.device ||
        key.strategy != want.strategy || key.n_jobs != want.n_jobs)
      continue;
    const double diff = std::abs(key.bandwidth_mbps - want.bandwidth_mbps);
    const double best_diff = std::abs(best_bw - want.bandwidth_mbps);
    if (!best || diff < best_diff ||
        (diff == best_diff && key.bandwidth_mbps < best_bw)) {
      best = plan;
      best_bw = key.bandwidth_mbps;
    }
  }
  if (best && bandwidth_out != nullptr) *bandwidth_out = best_bw;
  return best;
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.curve_hits = curve_hits_.load(std::memory_order_relaxed);
  s.curve_misses = curve_misses_.load(std::memory_order_relaxed);
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  return s;
}

void PlanCache::reset_stats() {
  curve_hits_.store(0, std::memory_order_relaxed);
  curve_misses_.store(0, std::memory_order_relaxed);
  plan_hits_.store(0, std::memory_order_relaxed);
  plan_misses_.store(0, std::memory_order_relaxed);
}

void PlanCache::clear() {
  util::MutexLock lock(mutex_);
  curves_.clear();
  plans_.clear();
  lock.unlock();
  reset_stats();
}

std::size_t PlanCache::curve_count() const {
  util::SharedLock lock(mutex_);
  return curves_.size();
}

std::size_t PlanCache::plan_count() const {
  util::SharedLock lock(mutex_);
  return plans_.size();
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

ShardedPlanCache::ShardedPlanCache(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(1, shards));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shards); ++i)
    shards_.push_back(std::make_unique<PlanCache>());
}

std::size_t ShardedPlanCache::shard_of(const CurveCacheKey& key) const {
  return PlanCache::CurveKeyHash{}(key) % shards_.size();
}

std::size_t ShardedPlanCache::shard_of(const PlanCacheKey& key) const {
  return PlanCache::PlanKeyHash{}(key) % shards_.size();
}

std::shared_ptr<const partition::ProfileCurve> ShardedPlanCache::curve(
    const CurveCacheKey& key, const PlanCache::CurveBuilder& build) {
  return shards_[shard_of(key)]->curve(key, build);
}

std::shared_ptr<const ExecutionPlan> ShardedPlanCache::plan(
    const PlanCacheKey& key, const PlanCache::PlanBuilder& build) {
  return shards_[shard_of(key)]->plan(key, build);
}

void ShardedPlanCache::insert_plan(const PlanCacheKey& key,
                                   std::shared_ptr<const ExecutionPlan> plan) {
  shards_[shard_of(key)]->insert_plan(key, std::move(plan));
}

std::vector<PlanCache::PlanEntry> ShardedPlanCache::plan_entries() const {
  std::vector<PlanCache::PlanEntry> out;
  for (const auto& shard : shards_) {
    auto entries = shard->plan_entries();
    out.insert(out.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  return out;
}

std::shared_ptr<const ExecutionPlan> ShardedPlanCache::nearest_plan(
    const PlanCacheKey& want, double* bandwidth_out) const {
  std::shared_ptr<const ExecutionPlan> best;
  double best_bw = 0.0;
  for (const auto& shard : shards_) {
    double bw = 0.0;
    auto candidate = shard->nearest_plan(want, &bw);
    if (!candidate) continue;
    const double diff = std::abs(bw - want.bandwidth_mbps);
    const double best_diff = std::abs(best_bw - want.bandwidth_mbps);
    if (!best || diff < best_diff || (diff == best_diff && bw < best_bw)) {
      best = std::move(candidate);
      best_bw = bw;
    }
  }
  if (best && bandwidth_out != nullptr) *bandwidth_out = best_bw;
  return best;
}

PlanCache::Stats ShardedPlanCache::stats() const {
  PlanCache::Stats total;
  for (const auto& shard : shards_) {
    const PlanCache::Stats s = shard->stats();
    total.curve_hits += s.curve_hits;
    total.curve_misses += s.curve_misses;
    total.plan_hits += s.plan_hits;
    total.plan_misses += s.plan_misses;
  }
  return total;
}

void ShardedPlanCache::reset_stats() {
  for (const auto& shard : shards_) shard->reset_stats();
}

void ShardedPlanCache::clear() {
  for (const auto& shard : shards_) shard->clear();
}

std::size_t ShardedPlanCache::curve_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->curve_count();
  return n;
}

std::size_t ShardedPlanCache::plan_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->plan_count();
  return n;
}

}  // namespace jps::core
