// Heterogeneous job sets — the paper's stated future work ("joint partition
// and scheduling for ... heterogeneous jobs is worth further investigation",
// §7).
//
// A mixed workload holds several classes of identical jobs (e.g. 4 frames
// through ResNet-18 and 8 through MobileNet-v2), each class with its own
// (f, g) curve.  Scheduling stays a 2-machine flow shop, so Johnson's rule
// is still optimal once every job's cut is fixed; the joint problem is the
// per-class cut choice.  The average-makespan objective
//       min max( sum_j f_j , sum_j g_j )
// is a min of the max of two linear functionals over a product of per-class
// mixture simplices, so the optimum lets every class mix at most two cuts,
// all classes aligned at a common price lambda on compute vs communication.
// plan_hetero() finds lambda by bisection (each job class picks the cut
// minimizing lambda*f + (1-lambda)*g), then fine-tunes the split with
// single-job moves evaluated through the exact flow-shop makespan.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/plan.h"
#include "partition/profile_curve.h"

namespace jps::core {

/// One class of identical jobs.
struct JobClass {
  std::string name;
  partition::ProfileCurve curve;
  int count = 0;
};

/// One scheduled job of a heterogeneous plan.
struct HeteroUnit {
  int class_index = 0;
  int job_id = 0;  // within its class
  std::size_t cut_index = 0;
  double f = 0.0;
  double g = 0.0;
};

/// A complete heterogeneous partition + schedule.
struct HeteroPlan {
  /// Jobs in Johnson processing order.
  std::vector<HeteroUnit> scheduled;
  std::size_t comm_heavy_count = 0;
  double makespan = 0.0;
  /// The compute-vs-communication price the balance search settled on
  /// (diagnostic; 0 for the baseline strategies).
  double lambda = 0.0;
};

/// Plan a heterogeneous workload.  Supported strategies:
///   kLocalOnly / kCloudOnly     — per class trivial cuts;
///   kPartitionOnly              — each class at its own single-job optimum;
///   kJPS / kJPSTuned / kJPSHull — the lambda-balanced joint optimizer
///                                 (all three aliases run the same search;
///                                 kept so callers can use one enum).
/// Throws std::invalid_argument on empty classes or non-positive counts.
[[nodiscard]] HeteroPlan plan_hetero(std::span<const JobClass> classes,
                                     Strategy strategy);

}  // namespace jps::core
