// ResNet-18 builder: 7x7 stem, four stages of two basic blocks, global
// average pooling and a linear classifier.  Shortcuts make the DAG general;
// the partition layer treats each basic block as a virtual block.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

// conv -> BN (no activation; caller adds it where the block needs one).
dnn::NodeId conv_bn(Graph& g, dnn::NodeId x, std::int64_t channels,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding) {
  x = g.add(conv2d(channels, kernel, stride, padding, 1, /*bias=*/false), {x});
  x = g.add(batch_norm(), {x});
  return x;
}

// One basic block: two 3x3 conv-BNs with a residual shortcut.  The first
// block of stages 2-4 halves resolution and doubles channels, so its
// shortcut is a 1x1 stride-2 conv-BN projection.
dnn::NodeId basic_block(Graph& g, dnn::NodeId x, std::int64_t channels,
                        std::int64_t stride) {
  const dnn::NodeId entry = x;
  x = conv_bn(g, x, channels, 3, stride, 1);
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = conv_bn(g, x, channels, 3, 1, 1);
  dnn::NodeId shortcut = entry;
  if (stride != 1) {
    shortcut = conv_bn(g, entry, channels, 1, stride, 0);
  }
  x = g.add(add(), {shortcut, x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

}  // namespace

Graph resnet18(std::int64_t num_classes) {
  Graph g("resnet18");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  x = conv_bn(g, x, 64, 7, 2, 3);
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});

  x = basic_block(g, x, 64, 1);
  x = basic_block(g, x, 64, 1);
  x = basic_block(g, x, 128, 2);
  x = basic_block(g, x, 128, 1);
  x = basic_block(g, x, 256, 2);
  x = basic_block(g, x, 256, 1);
  x = basic_block(g, x, 512, 2);
  x = basic_block(g, x, 512, 1);

  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
