// GoogLeNet (Inception-v1) builder: stem, nine inception modules with 4-way
// branches, global average pooling and a linear classifier.  The auxiliary
// training classifiers are omitted (inference-only model, as in the paper).
#include <array>

#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

dnn::NodeId conv_relu(Graph& g, dnn::NodeId x, std::int64_t channels,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t padding) {
  x = g.add(conv2d(channels, kernel, stride, padding), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

/// Channel plan of one inception module.
struct InceptionSpec {
  std::int64_t c1;       // 1x1 branch
  std::int64_t c3r, c3;  // 1x1 reduce -> 3x3 branch
  std::int64_t c5r, c5;  // 1x1 reduce -> 5x5 branch
  std::int64_t pp;       // pool -> 1x1 projection branch
};

dnn::NodeId inception(Graph& g, dnn::NodeId x, const InceptionSpec& s) {
  const dnn::NodeId b1 = conv_relu(g, x, s.c1, 1, 1, 0);

  dnn::NodeId b2 = conv_relu(g, x, s.c3r, 1, 1, 0);
  b2 = conv_relu(g, b2, s.c3, 3, 1, 1);

  dnn::NodeId b3 = conv_relu(g, x, s.c5r, 1, 1, 0);
  b3 = conv_relu(g, b3, s.c5, 5, 1, 2);

  dnn::NodeId b4 = g.add(pool2d(PoolKind::kMax, 3, 1, 1), {x});
  b4 = conv_relu(g, b4, s.pp, 1, 1, 0);

  return g.add(concat(), {b1, b2, b3, b4});
}

}  // namespace

Graph googlenet(std::int64_t num_classes) {
  Graph g("googlenet");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  // Stem.
  x = conv_relu(g, x, 64, 7, 2, 3);
  x = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});
  x = g.add(lrn(), {x});
  x = conv_relu(g, x, 64, 1, 1, 0);
  x = conv_relu(g, x, 192, 3, 1, 1);
  x = g.add(lrn(), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});

  // Inception 3a, 3b.
  x = inception(g, x, {64, 96, 128, 16, 32, 32});
  x = inception(g, x, {128, 128, 192, 32, 96, 64});
  x = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});

  // Inception 4a-4e.
  constexpr std::array<InceptionSpec, 5> kStage4{{{192, 96, 208, 16, 48, 64},
                                                  {160, 112, 224, 24, 64, 64},
                                                  {128, 128, 256, 24, 64, 64},
                                                  {112, 144, 288, 32, 64, 64},
                                                  {256, 160, 320, 32, 128, 128}}};
  for (const auto& spec : kStage4) x = inception(g, x, spec);
  x = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});

  // Inception 5a, 5b.
  x = inception(g, x, {256, 160, 320, 32, 128, 128});
  x = inception(g, x, {384, 192, 384, 48, 128, 128});

  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
