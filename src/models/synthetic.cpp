// Synthetic line-DNN generator used by property tests and Fig. 11.
#include <stdexcept>

#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

Graph synthetic_line(const SyntheticLineSpec& spec) {
  if (spec.blocks < 1) throw std::invalid_argument("synthetic_line: blocks < 1");
  if (spec.pool_every < 1)
    throw std::invalid_argument("synthetic_line: pool_every < 1");

  Graph g("synthetic_line_" + std::to_string(spec.blocks));
  NodeId x = g.add(
      input(TensorShape::chw(spec.input_channels, spec.input_size, spec.input_size)));

  std::int64_t channels = spec.base_channels;
  std::int64_t resolution = spec.input_size;
  for (int b = 0; b < spec.blocks; ++b) {
    if (b > 0 && spec.channel_double_every > 0 &&
        b % spec.channel_double_every == 0) {
      channels *= 2;
    }
    x = g.add(conv2d(channels, 3, 1, 1), {x});
    x = g.add(activation(ActivationKind::kReLU), {x});
    // Pool while the map is still large enough to halve.
    if ((b + 1) % spec.pool_every == 0 && resolution >= 4) {
      x = g.add(pool2d(PoolKind::kMax, 2, 2), {x});
      resolution /= 2;
    }
  }

  if (spec.fc_sizes.empty()) {
    x = g.add(global_avg_pool(), {x});
    x = g.add(flatten(), {x});
  } else {
    x = g.add(flatten(), {x});
    for (std::int64_t f : spec.fc_sizes) {
      x = g.add(dense(f), {x});
      x = g.add(activation(ActivationKind::kReLU), {x});
    }
  }
  return g;
}

}  // namespace jps::models
