// Tiny YOLOv2 builder: the 9-conv darknet backbone at 416x416 with
// batch-norm + leaky-ReLU conv blocks and a 1x1 detection head.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

// conv -> BN -> leaky ReLU (cost-modeled as ReLU).
dnn::NodeId conv_block(Graph& g, dnn::NodeId x, std::int64_t channels) {
  x = g.add(conv2d(channels, 3, 1, 1, /*groups=*/1, /*bias=*/false), {x});
  x = g.add(batch_norm(), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

}  // namespace

Graph tiny_yolov2(std::int64_t num_anchors, std::int64_t num_classes) {
  Graph g("tiny_yolov2");
  NodeId x = g.add(input(TensorShape::chw(3, 416, 416)));

  // Five conv+pool stages halving resolution: 416 -> 13.
  for (std::int64_t channels : {16, 32, 64, 128, 256}) {
    x = conv_block(g, x, channels);
    x = g.add(pool2d(PoolKind::kMax, 2, 2), {x});
  }
  // Stride-1 "same" pool (darknet uses a padded stride-1 maxpool here, which
  // keeps the 13x13 grid).
  x = conv_block(g, x, 512);
  x = g.add(pool2d(PoolKind::kMax, 3, 1, 1), {x});

  x = conv_block(g, x, 1024);
  x = conv_block(g, x, 1024);

  // Detection head: anchors * (5 box params + classes) channels per cell.
  const std::int64_t head = num_anchors * (5 + num_classes);
  x = g.add(conv2d(head, 1), {x});
  return g;
}

}  // namespace jps::models
