// Inception-v4 builder (Szegedy et al., AAAI 2017) — the network whose
// inception module the paper's Fig. 3(a) uses to illustrate general-structure
// DAGs.  299x299 input; stem with two branched joins, 4x Inception-A,
// Reduction-A, 7x Inception-B, Reduction-B, 3x Inception-C, global average
// pooling and the classifier.  Factorized 7x1/1x7 and 3x1/1x3 convolutions
// use the rectangular conv layer; "V" (valid) convs carry zero padding.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

NodeId conv_relu(Graph& g, NodeId x, std::int64_t channels, std::int64_t kernel,
                 std::int64_t stride, std::int64_t padding) {
  x = g.add(conv2d(channels, kernel, stride, padding), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

NodeId conv_relu_rect(Graph& g, NodeId x, std::int64_t channels,
                      std::int64_t kh, std::int64_t kw) {
  x = g.add(conv2d_rect(channels, kh, kw), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

// Stem: 3x299x299 -> 384x35x35, with two branch+concat joins.
NodeId stem(Graph& g, NodeId x) {
  x = conv_relu(g, x, 32, 3, 2, 0);  // 149x149
  x = conv_relu(g, x, 32, 3, 1, 0);  // 147x147
  x = conv_relu(g, x, 64, 3, 1, 1);  // 147x147

  const NodeId pool_a = g.add(pool2d(PoolKind::kMax, 3, 2), {x});   // 73x73
  const NodeId conv_a = conv_relu(g, x, 96, 3, 2, 0);               // 73x73
  x = g.add(concat(), {pool_a, conv_a});                            // 160

  NodeId b1 = conv_relu(g, x, 64, 1, 1, 0);
  b1 = conv_relu(g, b1, 96, 3, 1, 0);  // 71x71
  NodeId b2 = conv_relu(g, x, 64, 1, 1, 0);
  b2 = conv_relu_rect(g, b2, 64, 7, 1);
  b2 = conv_relu_rect(g, b2, 64, 1, 7);
  b2 = conv_relu(g, b2, 96, 3, 1, 0);  // 71x71
  x = g.add(concat(), {b1, b2});       // 192x71x71

  const NodeId conv_b = conv_relu(g, x, 192, 3, 2, 0);              // 35x35
  const NodeId pool_b = g.add(pool2d(PoolKind::kMax, 3, 2), {x});   // 35x35
  return g.add(concat(), {conv_b, pool_b});                         // 384x35x35
}

// Inception-A: 384 -> 384 at 35x35.
NodeId inception_a(Graph& g, NodeId x) {
  NodeId b1 = g.add(pool2d(PoolKind::kAvg, 3, 1, 1), {x});
  b1 = conv_relu(g, b1, 96, 1, 1, 0);
  const NodeId b2 = conv_relu(g, x, 96, 1, 1, 0);
  NodeId b3 = conv_relu(g, x, 64, 1, 1, 0);
  b3 = conv_relu(g, b3, 96, 3, 1, 1);
  NodeId b4 = conv_relu(g, x, 64, 1, 1, 0);
  b4 = conv_relu(g, b4, 96, 3, 1, 1);
  b4 = conv_relu(g, b4, 96, 3, 1, 1);
  return g.add(concat(), {b1, b2, b3, b4});
}

// Reduction-A: 384x35x35 -> 1024x17x17.
NodeId reduction_a(Graph& g, NodeId x) {
  const NodeId b1 = g.add(pool2d(PoolKind::kMax, 3, 2), {x});
  const NodeId b2 = conv_relu(g, x, 384, 3, 2, 0);
  NodeId b3 = conv_relu(g, x, 192, 1, 1, 0);
  b3 = conv_relu(g, b3, 224, 3, 1, 1);
  b3 = conv_relu(g, b3, 256, 3, 2, 0);
  return g.add(concat(), {b1, b2, b3});
}

// Inception-B: 1024 -> 1024 at 17x17.
NodeId inception_b(Graph& g, NodeId x) {
  NodeId b1 = g.add(pool2d(PoolKind::kAvg, 3, 1, 1), {x});
  b1 = conv_relu(g, b1, 128, 1, 1, 0);
  const NodeId b2 = conv_relu(g, x, 384, 1, 1, 0);
  NodeId b3 = conv_relu(g, x, 192, 1, 1, 0);
  b3 = conv_relu_rect(g, b3, 224, 1, 7);
  b3 = conv_relu_rect(g, b3, 256, 7, 1);
  NodeId b4 = conv_relu(g, x, 192, 1, 1, 0);
  b4 = conv_relu_rect(g, b4, 192, 1, 7);
  b4 = conv_relu_rect(g, b4, 224, 7, 1);
  b4 = conv_relu_rect(g, b4, 224, 1, 7);
  b4 = conv_relu_rect(g, b4, 256, 7, 1);
  return g.add(concat(), {b1, b2, b3, b4});
}

// Reduction-B: 1024x17x17 -> 1536x8x8.
NodeId reduction_b(Graph& g, NodeId x) {
  const NodeId b1 = g.add(pool2d(PoolKind::kMax, 3, 2), {x});
  NodeId b2 = conv_relu(g, x, 192, 1, 1, 0);
  b2 = conv_relu(g, b2, 192, 3, 2, 0);
  NodeId b3 = conv_relu(g, x, 256, 1, 1, 0);
  b3 = conv_relu_rect(g, b3, 256, 1, 7);
  b3 = conv_relu_rect(g, b3, 320, 7, 1);
  b3 = conv_relu(g, b3, 320, 3, 2, 0);
  return g.add(concat(), {b1, b2, b3});
}

// Inception-C: 1536 -> 1536 at 8x8, with nested branch splits (Fig. 3(a)).
NodeId inception_c(Graph& g, NodeId x) {
  NodeId b1 = g.add(pool2d(PoolKind::kAvg, 3, 1, 1), {x});
  b1 = conv_relu(g, b1, 256, 1, 1, 0);
  const NodeId b2 = conv_relu(g, x, 256, 1, 1, 0);

  const NodeId b3_stem = conv_relu(g, x, 384, 1, 1, 0);
  const NodeId b3_left = conv_relu_rect(g, b3_stem, 256, 1, 3);
  const NodeId b3_right = conv_relu_rect(g, b3_stem, 256, 3, 1);

  NodeId b4 = conv_relu(g, x, 384, 1, 1, 0);
  b4 = conv_relu_rect(g, b4, 448, 1, 3);
  b4 = conv_relu_rect(g, b4, 512, 3, 1);
  const NodeId b4_left = conv_relu_rect(g, b4, 256, 3, 1);
  const NodeId b4_right = conv_relu_rect(g, b4, 256, 1, 3);

  return g.add(concat(), {b1, b2, b3_left, b3_right, b4_left, b4_right});
}

}  // namespace

Graph inception_v4(std::int64_t num_classes) {
  Graph g("inception_v4");
  NodeId x = g.add(input(TensorShape::chw(3, 299, 299)));
  x = stem(g, x);
  for (int i = 0; i < 4; ++i) x = inception_a(g, x);
  x = reduction_a(g, x);
  for (int i = 0; i < 7; ++i) x = inception_b(g, x);
  x = reduction_b(g, x);
  for (int i = 0; i < 3; ++i) x = inception_c(g, x);
  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
