// MobileNet-v2 builder: initial conv, 17 bottleneck residual blocks per the
// (t, c, n, s) table of Sandler et al., final 1x1 conv, pooling and
// classifier.  Blocks with stride 1 and matching channels carry the bypass
// link shown in the paper's Fig. 10, which makes the DAG non-line; the
// partition layer collapses each block into a virtual block (§6.1).
#include <algorithm>
#include <array>

#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

// Round channels to a multiple of 8 as the reference implementation does,
// never dropping below 90% of the unrounded value.
std::int64_t round_channels(double c) {
  auto rounded = static_cast<std::int64_t>((c + 4.0) / 8.0) * 8;
  rounded = std::max<std::int64_t>(rounded, 8);
  if (static_cast<double>(rounded) < 0.9 * c) rounded += 8;
  return rounded;
}

// One inverted-residual bottleneck: 1x1 expand -> 3x3 depthwise -> 1x1
// project, with a residual add when the shapes allow it.
dnn::NodeId bottleneck(Graph& g, dnn::NodeId x, std::int64_t in_channels,
                       std::int64_t out_channels, std::int64_t expand_ratio,
                       std::int64_t stride) {
  const dnn::NodeId entry = x;
  const std::int64_t expanded = in_channels * expand_ratio;
  if (expand_ratio != 1) {
    x = g.add(conv2d(expanded, 1, 1, 0, 1, /*bias=*/false), {x});
    x = g.add(batch_norm(), {x});
    x = g.add(activation(ActivationKind::kReLU6), {x});
  }
  x = g.add(depthwise_conv2d(3, stride, 1), {x});
  x = g.add(batch_norm(), {x});
  x = g.add(activation(ActivationKind::kReLU6), {x});
  x = g.add(conv2d(out_channels, 1, 1, 0, 1, /*bias=*/false), {x});
  x = g.add(batch_norm(), {x});  // linear bottleneck: no activation
  if (stride == 1 && in_channels == out_channels) {
    x = g.add(add(), {entry, x});
  }
  return x;
}

}  // namespace

Graph mobilenet_v2(std::int64_t num_classes, double width_multiplier) {
  Graph g("mobilenet_v2");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  std::int64_t channels = round_channels(32.0 * width_multiplier);
  x = g.add(conv2d(channels, 3, 2, 1, 1, /*bias=*/false), {x});
  x = g.add(batch_norm(), {x});
  x = g.add(activation(ActivationKind::kReLU6), {x});

  // (expansion t, output channels c, repeats n, first stride s)
  struct Row {
    std::int64_t t, c, n, s;
  };
  constexpr std::array<Row, 7> kRows{{{1, 16, 1, 1},
                                      {6, 24, 2, 2},
                                      {6, 32, 3, 2},
                                      {6, 64, 4, 2},
                                      {6, 96, 3, 1},
                                      {6, 160, 3, 2},
                                      {6, 320, 1, 1}}};
  for (const auto& row : kRows) {
    const std::int64_t out =
        round_channels(static_cast<double>(row.c) * width_multiplier);
    for (std::int64_t i = 0; i < row.n; ++i) {
      const std::int64_t stride = (i == 0) ? row.s : 1;
      x = bottleneck(g, x, channels, out, row.t, stride);
      channels = out;
    }
  }

  const std::int64_t last =
      std::max<std::int64_t>(1280, round_channels(1280.0 * width_multiplier));
  x = g.add(conv2d(last, 1, 1, 0, 1, /*bias=*/false), {x});
  x = g.add(batch_norm(), {x});
  x = g.add(activation(ActivationKind::kReLU6), {x});
  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
