// Model zoo: layer-exact builders for the architectures the paper evaluates
// (§6: AlexNet, MobileNet-v2, ResNet-18, GoogLeNet) plus the line-structure
// networks it cites as motivation (VGG-16, NiN, Tiny-YOLOv2) and synthetic
// line DNNs for property tests.
//
// All builders return an un-inferred Graph; call g.infer() before use.
// Input resolution is ImageNet-style 3x224x224 unless noted.
#pragma once

#include <cstdint>

#include "dnn/graph.h"

namespace jps::models {

/// AlexNet (Krizhevsky et al., 2012), single-tower torchvision layout with
/// optional classic LRN layers. Line structure; 5 conv blocks + 3 FC.
[[nodiscard]] dnn::Graph alexnet(std::int64_t num_classes = 1000,
                                 bool with_lrn = true);

/// VGG (Simonyan & Zisserman, 2014) configurations A/B/D/E, i.e.
/// depth in {11, 13, 16, 19}. Line structure.
[[nodiscard]] dnn::Graph vgg(int depth, std::int64_t num_classes = 1000);

/// VGG-16, configuration D (the paper's motivating line-structure example).
[[nodiscard]] dnn::Graph vgg16(std::int64_t num_classes = 1000);

/// Network-in-Network, ImageNet variant (Lin et al., 2013). Line structure.
[[nodiscard]] dnn::Graph nin(std::int64_t num_classes = 1000);

/// Tiny YOLOv2 backbone + detection head (Redmon & Farhadi, 2016),
/// 3x416x416 input. Line structure.
[[nodiscard]] dnn::Graph tiny_yolov2(std::int64_t num_anchors = 5,
                                     std::int64_t num_classes = 20);

/// MobileNet-v2 (Sandler et al., 2018) with the paper's 17 bottleneck
/// residual blocks. General structure because of the bypass links; the
/// partition layer collapses each bottleneck into a virtual block (§6.1).
[[nodiscard]] dnn::Graph mobilenet_v2(std::int64_t num_classes = 1000,
                                      double width_multiplier = 1.0);

/// ResNet-18 (He et al., 2016): 8 basic blocks in 4 stages. General
/// structure (identity/downsample shortcuts).
[[nodiscard]] dnn::Graph resnet18(std::int64_t num_classes = 1000);

/// GoogLeNet / Inception-v1 (Szegedy et al., 2015): 9 inception modules.
/// General structure with 4-way branches inside each module.
[[nodiscard]] dnn::Graph googlenet(std::int64_t num_classes = 1000);

/// Inception-v4 (Szegedy et al., 2017) — the network of the paper's
/// Fig. 3(a), 3x299x299 input.  Branched stem, 4x A / 7x B / 3x C modules
/// with two reductions; the C modules contain the nested branch splits the
/// figure shows.  General structure.
[[nodiscard]] dnn::Graph inception_v4(std::int64_t num_classes = 1000);

/// SqueezeNet 1.1 (Iandola et al., 2016): eight two-branch fire modules,
/// ~1.2M parameters. General structure.
[[nodiscard]] dnn::Graph squeezenet(std::int64_t num_classes = 1000);

/// Parameters of a synthetic repeated conv/pool line DNN.
struct SyntheticLineSpec {
  /// Number of conv(+pool) blocks.
  int blocks = 8;
  /// Input resolution (square) and channels.
  std::int64_t input_size = 224;
  std::int64_t input_channels = 3;
  /// Channels of the first block; doubled every `channel_double_every` blocks.
  std::int64_t base_channels = 32;
  int channel_double_every = 2;
  /// Insert a stride-2 pool after every `pool_every` blocks (halves volume).
  int pool_every = 1;
  /// Trailing fully-connected head sizes; empty = end after global avg pool.
  std::vector<std::int64_t> fc_sizes = {256, 10};
};

/// Build a synthetic line DNN per `spec`. Its f curve is near-linear and its
/// g curve near-exponentially decreasing, matching the paper's §3.2 shape
/// assumptions exactly; used by property tests and Fig. 11's AlexNet'-style
/// experiments.
[[nodiscard]] dnn::Graph synthetic_line(const SyntheticLineSpec& spec);

}  // namespace jps::models
