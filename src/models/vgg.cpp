// VGG builder: configurations A/B/D/E (VGG-11/13/16/19).  All are pure line
// structures — the family the paper cites as its canonical line-DNN example.
#include <array>
#include <stdexcept>

#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

/// Convs per stage for each depth (channels are fixed at 64/128/256/512/512).
std::array<int, 5> stage_convs(int depth) {
  switch (depth) {
    case 11: return {1, 1, 2, 2, 2};  // config A
    case 13: return {2, 2, 2, 2, 2};  // config B
    case 16: return {2, 2, 3, 3, 3};  // config D
    case 19: return {2, 2, 4, 4, 4};  // config E
    default:
      throw std::invalid_argument("vgg: depth must be 11, 13, 16 or 19");
  }
}

}  // namespace

Graph vgg(int depth, std::int64_t num_classes) {
  const std::array<int, 5> convs = stage_convs(depth);
  constexpr std::array<std::int64_t, 5> kChannels{64, 128, 256, 512, 512};

  Graph g("vgg" + std::to_string(depth));
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));
  for (std::size_t stage = 0; stage < kChannels.size(); ++stage) {
    for (int i = 0; i < convs[stage]; ++i) {
      x = g.add(conv2d(kChannels[stage], 3, 1, 1), {x});
      x = g.add(activation(ActivationKind::kReLU), {x});
    }
    x = g.add(pool2d(PoolKind::kMax, 2, 2), {x});
  }

  x = g.add(flatten(), {x});  // 512*7*7 = 25088
  x = g.add(dense(4096), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(4096), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

Graph vgg16(std::int64_t num_classes) { return vgg(16, num_classes); }

}  // namespace jps::models
