// Name-indexed access to the model zoo, for harnesses that take model names
// on the command line.
#pragma once

#include <string>
#include <vector>

#include "dnn/graph.h"

namespace jps::models {

/// Build a zoo model by name. Recognized names: "alexnet", "vgg16", "nin",
/// "tiny_yolov2", "mobilenet_v2", "resnet18", "googlenet".
/// The returned graph already has infer() run.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] dnn::Graph build(const std::string& name);

/// All recognized model names, in a stable display order.
[[nodiscard]] const std::vector<std::string>& all_names();

/// The four models of the paper's evaluation (§6), in the order of Fig. 12.
[[nodiscard]] const std::vector<std::string>& paper_eval_names();

}  // namespace jps::models
