#include "models/registry.h"

#include <stdexcept>

#include "models/zoo.h"

namespace jps::models {

dnn::Graph build(const std::string& name) {
  dnn::Graph g = [&] {
    if (name == "alexnet") return alexnet();
    if (name == "vgg11") return vgg(11);
    if (name == "vgg13") return vgg(13);
    if (name == "vgg16") return vgg16();
    if (name == "vgg19") return vgg(19);
    if (name == "nin") return nin();
    if (name == "tiny_yolov2") return tiny_yolov2();
    if (name == "mobilenet_v2") return mobilenet_v2();
    if (name == "resnet18") return resnet18();
    if (name == "googlenet") return googlenet();
    if (name == "inception_v4") return inception_v4();
    if (name == "squeezenet") return squeezenet();
    throw std::invalid_argument("models::build: unknown model '" + name + "'");
  }();
  g.infer();
  return g;
}

const std::vector<std::string>& all_names() {
  static const std::vector<std::string> kNames = {
      "alexnet",      "vgg11",    "vgg13",     "vgg16",
      "vgg19",        "nin",      "tiny_yolov2", "squeezenet",
      "mobilenet_v2", "resnet18", "googlenet",  "inception_v4"};
  return kNames;
}

const std::vector<std::string>& paper_eval_names() {
  static const std::vector<std::string> kNames = {"alexnet", "googlenet",
                                                  "mobilenet_v2", "resnet18"};
  return kNames;
}

}  // namespace jps::models
