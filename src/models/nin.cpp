// Network-in-Network (ImageNet variant) builder: three mlpconv stacks, each a
// spatial conv followed by two 1x1 "cccp" convs, with a conv head and global
// average pooling instead of fully-connected layers.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

// One mlpconv stack: spatial conv + two 1x1 convs, all ReLU.
dnn::NodeId mlpconv(Graph& g, dnn::NodeId x, std::int64_t channels,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding, std::int64_t cccp1,
                    std::int64_t cccp2) {
  x = g.add(conv2d(channels, kernel, stride, padding), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(conv2d(cccp1, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(conv2d(cccp2, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  return x;
}

}  // namespace

Graph nin(std::int64_t num_classes) {
  Graph g("nin");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  x = mlpconv(g, x, 96, 11, 4, 0, 96, 96);
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});
  x = mlpconv(g, x, 256, 5, 1, 2, 256, 256);
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});
  x = mlpconv(g, x, 384, 3, 1, 1, 384, 384);
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});
  x = g.add(dropout(), {x});
  x = mlpconv(g, x, 1024, 3, 1, 1, 1024, num_classes);
  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
