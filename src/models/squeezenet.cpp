// SqueezeNet 1.1 builder (Iandola et al., 2016): eight "fire" modules —
// squeeze 1x1 followed by parallel expand 1x1 / expand 3x3 branches joined
// by a concat — with a conv classifier and global average pooling.  Another
// branchy family for the general-structure machinery, at ~1.2M parameters.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

namespace {

// Fire module: squeeze s 1x1 -> {expand e1 1x1 || expand e3 3x3} -> concat.
dnn::NodeId fire(Graph& g, dnn::NodeId x, std::int64_t squeeze,
                 std::int64_t expand1, std::int64_t expand3) {
  x = g.add(conv2d(squeeze, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  NodeId left = g.add(conv2d(expand1, 1), {x});
  left = g.add(activation(ActivationKind::kReLU), {left});
  NodeId right = g.add(conv2d(expand3, 3, 1, 1), {x});
  right = g.add(activation(ActivationKind::kReLU), {right});
  return g.add(concat(), {left, right});
}

}  // namespace

Graph squeezenet(std::int64_t num_classes) {
  Graph g("squeezenet");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  // SqueezeNet 1.1 layout (the cheaper revision).
  x = g.add(conv2d(64, 3, 2), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  x = fire(g, x, 16, 64, 64);
  x = fire(g, x, 16, 64, 64);
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  x = fire(g, x, 32, 128, 128);
  x = fire(g, x, 32, 128, 128);
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  x = fire(g, x, 48, 192, 192);
  x = fire(g, x, 48, 192, 192);
  x = fire(g, x, 64, 256, 256);
  x = fire(g, x, 64, 256, 256);

  x = g.add(dropout(), {x});
  x = g.add(conv2d(num_classes, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(global_avg_pool(), {x});
  x = g.add(flatten(), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
