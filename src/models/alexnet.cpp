// AlexNet builder.  Layer dimensions follow the single-tower torchvision
// layout (the one PyTorch serves, hence the one the paper profiled), with
// the classic local response normalization optionally re-inserted after the
// first two conv blocks.
#include "models/zoo.h"

namespace jps::models {

using namespace jps::dnn;

Graph alexnet(std::int64_t num_classes, bool with_lrn) {
  Graph g("alexnet");
  NodeId x = g.add(input(TensorShape::chw(3, 224, 224)));

  // Block 1: 64 x 11x11/4 p2 -> relu -> (lrn) -> maxpool 3/2
  x = g.add(conv2d(64, 11, 4, 2), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  if (with_lrn) x = g.add(lrn(), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  // Block 2: 192 x 5x5 p2 -> relu -> (lrn) -> maxpool 3/2
  x = g.add(conv2d(192, 5, 1, 2), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  if (with_lrn) x = g.add(lrn(), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  // Blocks 3-5: three 3x3 convs, pool after the last.
  x = g.add(conv2d(384, 3, 1, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(conv2d(256, 3, 1, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(conv2d(256, 3, 1, 1), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(pool2d(PoolKind::kMax, 3, 2), {x});

  // Classifier: flatten 256*6*6 -> 4096 -> 4096 -> num_classes.
  x = g.add(flatten(), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(4096), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(dropout(), {x});
  x = g.add(dense(4096), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  x = g.add(dense(num_classes), {x});
  x = g.add(activation(ActivationKind::kSoftmax), {x});
  return g;
}

}  // namespace jps::models
