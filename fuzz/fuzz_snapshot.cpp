// Fuzz the plan-cache snapshot decoder (serve/snapshot.h).
//
// decode_cache_snapshot has the strongest contract of all the parsers: it
// NEVER throws (a corrupt snapshot is a clean cold start, not a crashed
// server) and it is all-or-nothing (nothing is inserted unless the whole
// snapshot validates).  So this target runs WITHOUT a try/catch — any
// escaping exception is a finding — and checks:
//
//   * rejected  => a non-empty error and an untouched (empty) cache
//   * accepted  => re-encoding the populated cache and re-decoding it
//                  yields the same entry count (round trip)
#include <cstdint>
#include <string>

#include "core/plan_cache.h"
#include "serve/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using jps::serve::SnapshotLoadResult;
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  jps::core::ShardedPlanCache cache(4);
  const SnapshotLoadResult result =
      jps::serve::decode_cache_snapshot(bytes, cache);
  if (!result.ok) {
    if (result.error.empty()) __builtin_trap();
    if (cache.plan_count() != 0) __builtin_trap();  // all-or-nothing
    return 0;
  }
  if (result.entries != cache.plan_count()) __builtin_trap();

  const std::string reencoded = jps::serve::encode_cache_snapshot(cache);
  jps::core::ShardedPlanCache again(4);
  const SnapshotLoadResult second =
      jps::serve::decode_cache_snapshot(reencoded, again);
  if (!second.ok) __builtin_trap();
  if (again.plan_count() != cache.plan_count()) __builtin_trap();
  return 0;
}
