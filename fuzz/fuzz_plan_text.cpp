// Fuzz the two line-oriented text parsers that share the plan-artifact
// corpus: core::deserialize_plan (jps-plan v1) and
// profile::LookupTable::deserialize (jps-lookup-table v1).
//
// Contract for both: return a value or throw std::runtime_error — never
// crash, never accept-and-corrupt.  Accepted input must round-trip:
// serialize(deserialize(text)) is a fixed point under re-parsing.
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/plan_io.h"
#include "profile/lookup_table.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  try {
    const jps::core::ExecutionPlan plan = jps::core::deserialize_plan(text);
    const std::string once = jps::core::serialize_plan(plan);
    const std::string twice =
        jps::core::serialize_plan(jps::core::deserialize_plan(once));
    if (once != twice) __builtin_trap();
  } catch (const std::runtime_error&) {
  }

  try {
    const jps::profile::LookupTable table =
        jps::profile::LookupTable::deserialize(text);
    const std::string once = table.serialize();
    const std::string twice =
        jps::profile::LookupTable::deserialize(once).serialize();
    if (once != twice) __builtin_trap();
  } catch (const std::runtime_error&) {
  }
  return 0;
}
