// Regenerates the BINARY seed corpora (fuzz/corpus/protocol,
// fuzz/corpus/snapshot) from the encoders themselves, so the committed
// seeds never drift from the wire format:
//
//   ./fuzz_gen_seeds <path-to-fuzz/corpus>
//
// The text corpora (json, fault_spec, plan_text) are maintained by hand /
// copied from tests/check/corpus and are NOT touched here.  Seeds are
// deterministic: re-running produces byte-identical files (the snapshot
// encoder sorts its entries; plan computation is pure).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/transport.h"

namespace {

namespace fs = std::filesystem;
using namespace jps::serve;

// ByteStream that records everything written (for framed-stream seeds).
class CaptureStream final : public ByteStream {
 public:
  [[nodiscard]] std::size_t read(char*, std::size_t) override { return 0; }
  void write(const char* data, std::size_t size) override {
    bytes.append(data, size);
  }
  void shutdown_read() override {}
  void close() override {}
  void set_read_timeout_ms(double) override {}

  std::string bytes;
};

void put(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

void protocol_seeds(const fs::path& dir) {
  fs::create_directories(dir);

  PlanRequest request;
  request.tenant = "seed-tenant";
  request.model = "alexnet";
  request.bandwidth_mbps = 5.85;
  request.n_jobs = 20;
  request.deadline_ms = 250.0;
  put(dir / "plan_request_v2.bin", encode_plan_request(request));
  put(dir / "plan_request_v1.bin", encode_plan_request(request, 1));

  PlanReply reply;
  reply.status = Status::kOkStale;
  reply.message = "degraded";
  reply.stale = true;
  reply.cache_hit = true;
  reply.bandwidth_bucket_mbps = 6.0;
  reply.makespan_ms = 1280.5;
  reply.mix = {{6, 12}, {7, 8}};
  put(dir / "plan_reply_stale_v2.bin", encode_plan_reply(reply));
  put(dir / "plan_reply_stale_v1.bin", encode_plan_reply(reply, 1));
  put(dir / "ping.bin", encode_ping());
  put(dir / "ping_reply.bin", encode_ping_reply());

  CaptureStream framed;
  write_frame(framed, encode_plan_request(request));
  write_frame(framed, encode_plan_reply(reply));
  write_frame(framed, encode_ping());
  put(dir / "framed_stream.bin", framed.bytes);
  put(dir / "framed_truncated.bin",
      framed.bytes.substr(0, framed.bytes.size() - 3));

  // Hostile length prefix: kMaxFrameBytes + 1, little-endian, then junk.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::string hostile;
  for (int i = 0; i < 4; ++i)
    hostile.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  hostile += "JJ";
  put(dir / "framed_oversized_prefix.bin", hostile);
  put(dir / "bad_magic.bin", std::string("\x00\x01\x02\x03\x04", 5));
}

void snapshot_seeds(const fs::path& dir) {
  fs::create_directories(dir);

  // A real populated cache: run two plans through a Server and encode its
  // cache — the exact bytes save_snapshot_if_configured would write.
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  for (const char* model : {"alexnet", "nin"}) {
    PlanRequest request;
    request.model = model;
    request.bandwidth_mbps = 5.85;
    request.n_jobs = 8;
    const PlanReply reply = server.handle_plan(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "seed plan failed: %s\n", reply.message.c_str());
      std::exit(1);
    }
  }
  const std::string valid = encode_cache_snapshot(server.cache());
  server.stop();

  put(dir / "snapshot_valid.bin", valid);
  put(dir / "snapshot_truncated.bin", valid.substr(0, valid.size() / 2));

  std::string flipped = valid;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0xFF);
  put(dir / "snapshot_bitflip.bin", flipped);

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  put(dir / "snapshot_bad_magic.bin", bad_magic);
  put(dir / "snapshot_empty.bin", std::string());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <fuzz/corpus dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  protocol_seeds(root / "protocol");
  snapshot_seeds(root / "snapshot");
  return 0;
}
