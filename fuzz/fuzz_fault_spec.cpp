// Fuzz fault::FaultSpec::parse (the jps-faults v1 text format).
//
// Contract: parse() either returns a validated spec or throws
// std::runtime_error (bad header, unknown keyword, malformed numbers,
// overlapping outages, non-positive factors...).  A spec that parses must
// round-trip through serialize(): the parser and printer agree on the
// format.
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using jps::fault::FaultSpec;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const FaultSpec spec = FaultSpec::parse(text);
    const FaultSpec again = FaultSpec::parse(spec.serialize());
    if (again.serialize() != spec.serialize()) __builtin_trap();
  } catch (const std::runtime_error&) {
  }
  return 0;
}
