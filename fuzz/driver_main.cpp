// Standalone replay driver for builds without libFuzzer (GCC, or clang
// with JPS_BUILD_FUZZERS on but no fuzzing intended): runs every corpus
// file given on the command line (directories are walked recursively)
// through LLVMFuzzerTestOneInput exactly once and exits non-zero if any
// input crashes the process (a crash simply propagates).
//
// Under clang this file is NOT linked — libFuzzer provides main() and the
// same binary both fuzzes and replays (`target -runs=0 corpus/`).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

int run_one(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n",
                 path.string().c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (const fs::path& input : inputs) failures += run_one(input);
  std::printf("fuzz driver: replayed %zu inputs, %d unreadable\n",
              inputs.size(), failures);
  return failures == 0 ? 0 : 1;
}
