// Fuzz util::Json::parse.
//
// Contract: parse() either returns a value or throws JsonParseError —
// including on deep nesting (kMaxDepth bounds recursion, so no stack
// overflow), huge numbers, broken escapes, and truncated input.  A value
// that parses must round-trip: dump() -> parse() -> dump() is a fixed
// point (dump emits valid JSON, and parsing it back loses nothing).
#include <cstdint>
#include <string>

#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using jps::util::Json;
  using jps::util::JsonParseError;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const Json value = Json::parse(text);
    const std::string once = value.dump();
    const std::string twice = Json::parse(once).dump();
    if (once != twice) __builtin_trap();
    // Pretty-printed output must reparse to the same value too.
    if (Json::parse(value.dump(2)).dump() != once) __builtin_trap();
  } catch (const JsonParseError&) {
  }
  return 0;
}
