// Fuzz the wire-protocol decoders (serve/protocol.h).
//
// The input is interpreted two ways, because the decoders have two layers
// with different contracts:
//
//   1. As a bare payload: peek_op / peek_version / decode_plan_request /
//      decode_plan_reply must either return or throw ProtocolError — never
//      crash, never read out of bounds (the smoke job runs under
//      ASan+UBSan).  A payload that decodes must re-encode and re-decode
//      to the same value (round-trip property).
//
//   2. As a raw byte stream: read_frame must handle hostile length
//      prefixes (oversized => ProtocolError before any allocation),
//      truncation (TransportError), and clean EOF (nullopt) — again
//      without crashing.
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace {

// Minimal in-memory ByteStream: serves the fuzz input as incoming bytes.
class MemoryStream final : public jps::serve::ByteStream {
 public:
  explicit MemoryStream(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t read(char* out, std::size_t max) override {
    const std::size_t n = std::min(max, bytes_.size() - pos_);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return n;  // 0 == EOF once the input is drained
  }
  void write(const char*, std::size_t) override {}
  void shutdown_read() override { pos_ = bytes_.size(); }
  void close() override { pos_ = bytes_.size(); }
  void set_read_timeout_ms(double) override {}

 private:
  std::string bytes_;
  std::size_t pos_ = 0;
};

void abort_if(bool broken) {
  if (broken) __builtin_trap();  // surface property violations as crashes
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace jps::serve;
  const std::string_view payload(reinterpret_cast<const char*>(data), size);

  try {
    (void)peek_op(payload);
  } catch (const ProtocolError&) {
  }
  try {
    (void)peek_version(payload);
  } catch (const ProtocolError&) {
  }

  try {
    const PlanRequest request = decode_plan_request(payload);
    // Round trip at the version the frame arrived in: a v1 request has no
    // deadline on the wire, so re-encoding at v1 must reproduce it.
    const std::uint8_t version = peek_version(payload);
    const PlanRequest again =
        decode_plan_request(encode_plan_request(request, version));
    abort_if(!(again == request));
  } catch (const ProtocolError&) {
  }

  // Introspection decoders (v3-only): same contract — return or throw
  // ProtocolError, and whatever decodes must round-trip bit-exactly.
  try {
    decode_stats_request(payload);
  } catch (const ProtocolError&) {
  }
  try {
    const std::uint32_t max_traces = decode_trace_dump_request(payload);
    abort_if(decode_trace_dump_request(
                 encode_trace_dump_request(max_traces)) != max_traces);
  } catch (const ProtocolError&) {
  }
  try {
    const StatsReply reply = decode_stats_reply(payload);
    abort_if(!(decode_stats_reply(encode_stats_reply(reply)) == reply));
  } catch (const ProtocolError&) {
  }
  try {
    const TraceDumpReply reply = decode_trace_dump_reply(payload);
    abort_if(!(decode_trace_dump_reply(encode_trace_dump_reply(reply)) ==
               reply));
  } catch (const ProtocolError&) {
  }

  try {
    const PlanReply reply = decode_plan_reply(payload);
    const std::uint8_t version = peek_version(payload);
    const PlanReply again = decode_plan_reply(encode_plan_reply(reply, version));
    // v1 downgrades kOkStale/kDeadlineExceeded; re-decoding what we
    // re-encoded must still be a fixed point of encode∘decode.
    const PlanReply thrice =
        decode_plan_reply(encode_plan_reply(again, version));
    abort_if(!(thrice == again));
  } catch (const ProtocolError&) {
  }

  // Layer 2: the same bytes as a framed stream.
  MemoryStream stream(payload);
  try {
    while (read_frame(stream).has_value()) {
    }
  } catch (const ProtocolError&) {
    // TransportError derives from ProtocolError; both are in-contract.
  }
  return 0;
}
