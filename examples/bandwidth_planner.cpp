// Deployment helper: given a model, profile it once into the lookup table
// (as the paper's scheduler does at install time, §6.1), train the
// communication regression, then print the offloading policy across the
// bandwidth range — which strategy wins where, and the cut depths JPS picks.
//
//   ./examples/bandwidth_planner [model] [n_jobs]
#include <cstdlib>
#include <algorithm>
#include <iostream>
#include <map>

#include "jps.h"

int main(int argc, char** argv) {
  using namespace jps;
  const std::string model = argc > 1 ? argv[1] : "mobilenet_v2";
  const int n_jobs = argc > 2 ? std::atoi(argv[2]) : 32;

  const dnn::Graph graph = models::build(model);

  // Install-time profiling campaign: noisy trials -> per-layer medians.
  profile::ProfilerOptions profiler_options;
  profiler_options.trials = 15;
  profiler_options.noise_sigma = 0.05;
  const profile::Profiler profiler(profile::DeviceProfile::raspberry_pi_4b(),
                                   profiler_options);
  util::Rng rng(2026);
  profile::LookupTable table;
  table.add_graph(graph, profiler.measure_graph(graph, rng));
  std::cout << "profiled " << table.size() << " layers of " << model
            << " into the lookup table\n";

  // Train the communication regression once against a reference link; the
  // w0 + w1*(size/bandwidth) form then serves every bandwidth.
  const net::Channel reference(10.0);
  const profile::CommRegression comm = profile::CommRegression::train_on_channel(
      reference, 1024, 16u * 1024 * 1024, 32, 0.05, rng);
  std::cout << "comm regression: t = " << util::format_fixed(comm.w0(), 2)
            << " + " << util::format_fixed(comm.w1() * 1000.0, 3)
            << "e-3 * (bytes/Mbps) ms  (R^2 = "
            << util::format_fixed(comm.r2(), 4) << ")\n\n";

  util::Table table_out({"Mbps", "winner", "JPS ms/job", "vs runner-up",
                         "JPS cut depths (jobs@cut)"});
  for (double mbps = 0.5; mbps <= 96.0; mbps *= 2.0) {
    const auto curve = partition::ProfileCurve::build(
        graph, [&](dnn::NodeId id) { return table.at(model, id); },
        [&](std::uint64_t bytes) { return comm.predict_ms(bytes, mbps); });
    const core::Planner planner(curve);

    struct Entry {
      core::Strategy strategy;
      double makespan;
    };
    std::vector<Entry> entries;
    for (const core::Strategy s :
         {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
          core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
      entries.push_back({s, planner.plan(s, n_jobs).predicted_makespan});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.makespan < b.makespan;
              });

    // Summarize the JPS cut mix as "count@index" pairs.
    const core::ExecutionPlan jps = planner.plan(core::Strategy::kJPS, n_jobs);
    std::map<std::size_t, int> mix;
    for (const auto& job : jps.jobs) ++mix[job.cut_index];
    std::string mix_str;
    for (const auto& [cut, count] : mix) {
      if (!mix_str.empty()) mix_str += " + ";
      mix_str += std::to_string(count) + "@" + std::to_string(cut);
    }

    table_out.add_row(
        {util::format_fixed(mbps, 1),
         core::strategy_name(entries.front().strategy),
         util::format_ms(jps.predicted_makespan / n_jobs),
         util::format_pct(entries[1].makespan / entries[0].makespan - 1.0),
         mix_str});
  }
  std::cout << table_out
            << "\nReading: at low bandwidth local compute dominates; the\n"
               "JPS mix shifts toward deeper cuts as the link slows, and\n"
               "toward the raw-input cut as it speeds up.\n";
  return 0;
}
