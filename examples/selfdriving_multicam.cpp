// Self-driving multi-camera scenario (the paper's §1 motivation): every
// perception cycle, six cameras each produce one frame that runs through the
// same ResNet-18.  The six identical jobs must all finish before the next
// cycle — i.e. the makespan of the job set bounds the achievable frame rate.
//
//   ./examples/selfdriving_multicam [cameras] [model]
#include <cstdlib>
#include <iostream>

#include "jps.h"

int main(int argc, char** argv) {
  using namespace jps;
  const int cameras = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::string model = argc > 2 ? argv[2] : "resnet18";

  std::cout << "Self-driving perception: " << cameras
            << " cameras -> " << model << " per frame, per cycle\n\n";

  const dnn::Graph graph = models::build(model);
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());

  util::Table table({"uplink", "LO fps", "CO fps", "PO fps", "JPS fps",
                     "JPS cuts used"});
  const struct {
    const char* label;
    double mbps;
  } kLinks[] = {{"3G 1.1 Mbps", 1.1},
                {"LTE 5.85 Mbps", 5.85},
                {"Wi-Fi 18.88 Mbps", 18.88},
                {"5G-ish 50 Mbps", 50.0}};

  for (const auto& link : kLinks) {
    const net::Channel channel(link.mbps);
    const auto curve = partition::ProfileCurve::build(graph, mobile, channel);
    const core::Planner planner(curve);

    auto fps = [&](core::Strategy strategy) {
      const core::ExecutionPlan plan = planner.plan(strategy, cameras);
      util::Rng rng(7);
      const double makespan =
          sim::simulate_plan(graph, curve, plan, mobile, cloud, channel, {}, rng)
              .makespan;
      return 1000.0 / makespan;  // cycles (all cameras) per second
    };

    const core::ExecutionPlan jps_plan =
        planner.plan(core::Strategy::kJPS, cameras);
    std::string cuts;
    for (const auto& job : jps_plan.jobs) {
      if (!cuts.empty()) cuts += ",";
      cuts += std::to_string(job.cut_index);
    }
    table.add_row({link.label,
                   util::format_fixed(fps(core::Strategy::kLocalOnly), 2),
                   util::format_fixed(fps(core::Strategy::kCloudOnly), 2),
                   util::format_fixed(fps(core::Strategy::kPartitionOnly), 2),
                   util::format_fixed(fps(core::Strategy::kJPS), 2), cuts});
  }
  std::cout << table
            << "\n(fps = full perception cycles per second: all cameras'\n"
               "frames classified. JPS mixes two cut depths so camera\n"
               "offloads pipeline behind on-board compute.)\n";

  // Show one cycle's pipeline at LTE.
  const net::Channel channel(5.85);
  const auto curve = partition::ProfileCurve::build(graph, mobile, channel);
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, cameras);
  util::Rng rng(7);
  const sim::SimResult result =
      sim::simulate_plan(graph, curve, plan, mobile, cloud, channel, {}, rng);
  std::cout << "\nOne LTE perception cycle (" << util::format_ms(result.makespan)
            << " ms):\n"
            << sim::ascii_gantt(result, 90);
  return 0;
}
