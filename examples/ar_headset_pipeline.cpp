// AR-headset scenario with a general-structure DNN: the perception model has
// an inception-style multi-branch module, so the partition may spread across
// branches (§5.3, Alg. 3, Fig. 9).  This example walks through:
//   1. the DAG and its independent-path conversion;
//   2. Alg. 3's per-path cuts and the modified-Johnson schedule with
//      duplicated work counted once;
//   3. the segment spread-cut curve as the alternative general-structure
//      treatment, compared on the same workload.
#include <iostream>

#include "jps.h"

namespace {

using namespace jps;

// A compact AR perception net: stem -> inception-style module -> conv head.
dnn::Graph build_ar_model() {
  using namespace jps::dnn;
  Graph g("ar_perception");
  NodeId x = g.add(input(TensorShape::chw(3, 192, 192)));
  x = g.add(conv2d(48, 5, 2, 2), {x});
  x = g.add(activation(ActivationKind::kReLU), {x});
  const NodeId entry = g.add(pool2d(PoolKind::kMax, 3, 2, 1), {x});

  const NodeId b1 = g.add(conv2d(32, 1), {entry});
  NodeId b2 = g.add(conv2d(16, 1), {entry});
  b2 = g.add(conv2d(48, 3, 1, 1), {b2});
  NodeId b3 = g.add(pool2d(PoolKind::kMax, 3, 1, 1), {entry});
  b3 = g.add(conv2d(32, 1), {b3});
  const NodeId join = g.add(concat(), {b1, b2, b3});

  NodeId y = g.add(conv2d(96, 3, 2, 1), {join});
  y = g.add(activation(ActivationKind::kReLU), {y});
  y = g.add(conv2d(128, 3, 2, 1), {y});
  y = g.add(activation(ActivationKind::kReLU), {y});
  y = g.add(global_avg_pool(), {y});
  y = g.add(flatten(), {y});
  (void)g.add(dense(64), {y});
  g.infer();
  return g;
}

}  // namespace

int main() {
  const dnn::Graph graph = build_ar_model();
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const net::Channel channel(net::kBandwidth4GMbps);
  const auto mobile_fn = [&](dnn::NodeId id) {
    return mobile.node_time_ms(graph, id);
  };
  const auto comm_fn = [&](std::uint64_t bytes) { return channel.time_ms(bytes); };

  std::cout << "AR perception model (" << graph.size() << " nodes, "
            << graph.path_count() << " independent paths)\n\nDOT:\n"
            << dnn::to_dot(graph) << "\n";

  // --- Alg. 3: per-path partition ---
  const auto path_cuts = partition::alg3_path_cuts(graph, mobile_fn, comm_fn);
  std::cout << "Alg. 3 per-path cuts:\n";
  for (const auto& cut : path_cuts) {
    std::cout << "  path " << cut.path_index << ": cut after "
              << (cut.cut_node ? graph.label(*cut.cut_node) : "(fully local)")
              << "  f_dup=" << util::format_ms(cut.f_dup)
              << " ms, g_dup=" << util::format_ms(cut.g_dup) << " ms\n";
  }

  constexpr int kFrames = 12;  // frames in flight per planning window
  const core::Alg3Plan alg3 =
      core::plan_alg3(graph, mobile_fn, comm_fn, kFrames);
  std::cout << "\nAlg. 3 schedule of " << kFrames << " frames x "
            << alg3.paths_per_job << " paths:\n  makespan (dedup)     "
            << util::format_ms(alg3.makespan) << " ms\n  makespan (naive dup) "
            << util::format_ms(alg3.makespan_dup)
            << " ms  -> counting shared prefixes once saves "
            << util::format_pct(1.0 - alg3.makespan / alg3.makespan_dup)
            << "\n";

  // --- Alternative: spread-cut curve + JPS ---
  const auto general_curve =
      partition::build_general_curve(graph, mobile_fn, comm_fn);
  const core::Planner planner(general_curve);
  const core::ExecutionPlan plan =
      planner.plan(core::Strategy::kJPSHull, kFrames);
  std::cout << "\nSpread-cut curve (" << general_curve.size()
            << " candidates incl. intra-module cut-sets):\n";
  for (std::size_t i = 0; i < general_curve.size(); ++i) {
    const auto& cut = general_curve.cut(i);
    std::cout << "  [" << i << "] f=" << util::format_ms(cut.f)
              << " g=" << util::format_ms(cut.g) << "  cut tensors: "
              << cut.cut_nodes.size() << "  (" << cut.label << ")\n";
  }
  std::cout << "JPS+ on the spread curve: makespan "
            << util::format_ms(plan.predicted_makespan) << " ms vs Alg. 3 "
            << util::format_ms(alg3.makespan) << " ms for the same "
            << kFrames << " frames\n"
            << "(Alg. 3 treats each path as its own schedulable unit; the\n"
            << "spread curve keeps one unit per frame but lets its cut-set\n"
            << "take different depths per branch.)\n";

  // Execute the spread plan for the full picture.
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  util::Rng rng(3);
  const sim::SimResult result = sim::simulate_plan(
      graph, general_curve, plan, mobile, cloud, channel, {}, rng);
  std::cout << "\nSimulated pipeline:\n" << sim::ascii_gantt(result, 90);
  return 0;
}
