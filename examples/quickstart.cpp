// Quickstart: partition and schedule a batch of AlexNet inference jobs
// between a simulated mobile device and cloud server, then watch the plan
// execute on the discrete-event simulator.
//
//   ./examples/quickstart [n_jobs] [bandwidth_mbps]
#include <cstdlib>
#include <iostream>

#include "jps.h"

int main(int argc, char** argv) {
  using namespace jps;
  const int n_jobs = argc > 1 ? std::atoi(argv[1]) : 8;
  const double mbps = argc > 2 ? std::atof(argv[2]) : net::kBandwidth4GMbps;

  // 1. A model from the zoo (shape/FLOP inference already run).
  const dnn::Graph graph = models::build("alexnet");
  std::cout << "model: " << graph.name() << " — " << graph.size()
            << " layers, " << util::format_fixed(graph.total_flops() / 1e9, 2)
            << " GFLOPs, " << graph.total_params() / 1'000'000 << "M params\n";

  // 2. The devices and the uplink.
  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel(mbps);

  // 3. The (f, g) profile curve over candidate cut points.
  const auto curve = partition::ProfileCurve::build(graph, mobile, channel);
  std::cout << "\ncut candidates at " << mbps << " Mbps:\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::cout << "  [" << i << "] f=" << util::format_ms(curve.f(i))
              << " ms, g=" << util::format_ms(curve.g(i)) << " ms  ("
              << curve.cut(i).label << ")\n";
  }

  // 4. Joint partition + scheduling.
  const core::Planner planner(curve);
  const auto decision = planner.decision();
  std::cout << "\nAlg. 2: l* = " << decision.l_star;
  if (decision.l_minus)
    std::cout << ", pairs with l*-1 = " << *decision.l_minus
              << " (ratio " << decision.ratio << ")";
  std::cout << "\n";

  for (const core::Strategy strategy :
       {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
        core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
    const core::ExecutionPlan plan = planner.plan(strategy, n_jobs);
    std::cout << "  " << core::strategy_name(strategy) << ": makespan "
              << util::format_ms(plan.predicted_makespan) << " ms ("
              << util::format_ms(plan.makespan_per_job()) << " ms/job)\n";
  }

  // 5. Execute the JPS plan end-to-end and render the pipeline.
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, n_jobs);
  util::Rng rng(42);
  const sim::SimResult result =
      sim::simulate_plan(graph, curve, plan, mobile, cloud, channel, {}, rng);
  std::cout << "\nsimulated makespan: " << util::format_ms(result.makespan)
            << " ms  (mobile busy " << util::format_pct(result.mobile_utilization)
            << ", uplink busy " << util::format_pct(result.link_utilization)
            << ")\n\n"
            << sim::ascii_gantt(result, 100);
  return 0;
}
