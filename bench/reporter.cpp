#include "reporter.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/obs.h"

#ifndef JPS_GIT_SHA
#define JPS_GIT_SHA "unknown"
#endif
#ifndef JPS_BUILD_TYPE
#define JPS_BUILD_TYPE "unknown"
#endif

namespace jps::bench {

bool quick_mode() {
  const char* env = std::getenv("JPS_BENCH_QUICK");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

int quick_scaled(int n, int quick_n) { return quick_mode() ? quick_n : n; }

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

BenchReporter::~BenchReporter() {
  try {
    write();
  } catch (const std::exception& e) {
    std::cerr << "(bench telemetry write failed: " << e.what() << ")\n";
  }
}

void BenchReporter::note(const std::string& key, const std::string& value) {
  config_.set(key, util::Json(value));
}
void BenchReporter::note(const std::string& key, const char* value) {
  config_.set(key, util::Json(value));
}
void BenchReporter::note(const std::string& key, double value) {
  config_.set(key, util::Json(value));
}
void BenchReporter::note(const std::string& key, int value) {
  config_.set(key, util::Json(value));
}

obs::Histogram& BenchReporter::metric(const std::string& name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(name, std::make_unique<obs::Histogram>(name)).first;
  }
  return *it->second;
}

void BenchReporter::record(const std::string& name, double value) {
  metric(name).record(value);
}

util::Json BenchReporter::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json("jps-bench-v1"));
  doc.set("name", util::Json(name_));
  doc.set("git_sha", util::Json(JPS_GIT_SHA));
  doc.set("build_type", util::Json(JPS_BUILD_TYPE));
  doc.set("compiler", util::Json(__VERSION__));
  doc.set("quick", util::Json(quick_mode()));
  doc.set("warmup", util::Json(warmup_));
  doc.set("iterations", util::Json(iterations_));
  doc.set("config", config_);

  util::Json metrics = util::Json::object();
  for (const auto& [name, hist] : metrics_) {
    const obs::HistogramSnapshot snap = hist->snapshot();
    util::Json m = util::Json::object();
    m.set("count", util::Json(static_cast<double>(snap.count)));
    m.set("mean", util::Json(snap.mean()));
    m.set("p50", util::Json(snap.percentile(50.0)));
    m.set("p95", util::Json(snap.percentile(95.0)));
    m.set("p99", util::Json(snap.percentile(99.0)));
    m.set("min", util::Json(snap.min));
    m.set("max", util::Json(snap.max));
    m.set("sum", util::Json(snap.sum));
    metrics.set(name, std::move(m));
  }
  doc.set("metrics", std::move(metrics));

  // Runtime counters give the diff tool context (how many simulator runs,
  // cache hits, retries... produced these distributions).
  util::Json counters = util::Json::object();
  for (const auto& [name, value] : obs::Registry::global().counters())
    counters.set(name, util::Json(static_cast<double>(value)));
  doc.set("counters", std::move(counters));
  return doc;
}

std::string BenchReporter::write() {
  if (written_) return {};
  const char* dir = std::getenv("JPS_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  written_ = true;
  const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << to_json().dump(2);
  std::cout << "(bench telemetry written to " << path << ")\n";
  return path;
}

}  // namespace jps::bench
