// Fig. 4 — Time consumption of each layer (block) of AlexNet.
//   (a) mobile compute vs communication vs cloud compute per cut candidate:
//       cloud compute is negligible.
//   (b) the trend: cumulative mobile time f increases with depth, clustered
//       offload time g decreases.
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Figure 4",
                      "Per-layer time profile of AlexNet (8 clustered blocks): "
                      "cloud time negligible; f increasing, g decreasing");

  const bench::Testbed testbed("alexnet");
  const double wifi = net::kBandwidthWiFiMbps;
  const net::Channel channel(wifi);

  partition::CurveOptions options;
  options.with_cloud_times = true;
  const auto curve = partition::ProfileCurve::build(
      testbed.graph(), testbed.mobile(), channel, options, &testbed.cloud());

  util::Table per_block({"block (cut point)", "mobile comp (ms)",
                         "block comp (ms)", "comm (ms)", "cloud comp (ms)",
                         "offload size"});
  double prev_f = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& cut = curve.cut(i);
    per_block.add_row({cut.label, util::format_ms(cut.f),
                       util::format_ms(cut.f - prev_f),
                       util::format_ms(cut.g), util::format_ms(cut.cloud),
                       util::format_bytes(cut.offload_bytes)});
    prev_f = cut.f;
  }
  std::cout << per_block;

  const double mobile_total = testbed.mobile().graph_time_ms(testbed.graph());
  const double cloud_total = testbed.cloud().graph_time_ms(testbed.graph());
  std::cout << "\nFig 4(a) claim check: total cloud compute "
            << util::format_ms(cloud_total) << " ms vs total mobile compute "
            << util::format_ms(mobile_total) << " ms ("
            << util::format_pct(cloud_total / mobile_total)
            << " of mobile) -> negligible\n";

  bool f_up = true;
  bool g_down = true;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    f_up &= curve.f(i) >= curve.f(i - 1);
    g_down &= curve.g(i) <= curve.g(i - 1);
  }
  std::cout << "Fig 4(b) claim check: f monotonically increasing: "
            << (f_up ? "yes" : "NO") << "; clustered g non-increasing: "
            << (g_down ? "yes" : "NO") << "\n";
  return 0;
}
