// Quantized offloading ablation (compatible-approaches claim of §2): the
// paper's method does not modify the model, but the *transfer* can still be
// compressed.  Shipping intermediate tensors as f16/i8 rescales the g curve,
// moving the optimal cut earlier and widening the low-bandwidth benefit
// range — this bench quantifies that on the paper's four models.
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Ablation: quantized transfer",
                      "JPS per-job latency when intermediate tensors ship as "
                      "f32 / f16 / i8 (compute stays f32)");

  constexpr int kJobs = 100;
  for (const double mbps : {net::kBandwidth3GMbps, net::kBandwidth4GMbps}) {
    std::cout << "\n--- " << mbps << " Mbps (per-job ms, predicted) ---\n";
    util::Table table({"model", "f32", "f16", "i8", "i8 cut vs f32 cut",
                       "i8 gain"});
    for (const auto& model : models::paper_eval_names()) {
      const profile::LatencyModel mobile(
          profile::DeviceProfile::raspberry_pi_4b());
      const net::Channel channel(mbps);

      double per_job[3] = {0, 0, 0};
      std::size_t cut_depth[3] = {0, 0, 0};
      const dnn::DType dtypes[] = {dnn::DType::kFloat32, dnn::DType::kFloat16,
                                   dnn::DType::kInt8};
      for (int d = 0; d < 3; ++d) {
        dnn::Graph g = models::build(model);
        g.set_dtype(dtypes[d]);
        g.infer();
        // Mobile compute still runs f32 kernels: take node times from an
        // f32 twin so only the transfer volume changes.
        dnn::Graph f32 = models::build(model);
        const auto curve = partition::ProfileCurve::build(
            g, [&](dnn::NodeId id) { return mobile.node_time_ms(f32, id); },
            [&](std::uint64_t bytes) { return channel.time_ms(bytes); });
        const core::Planner planner(curve);
        const auto plan = planner.plan(core::Strategy::kJPSHull, kJobs);
        per_job[d] = plan.predicted_makespan / kJobs;
        cut_depth[d] =
            curve.cut(planner.decision().l_star).local_nodes.size();
      }
      table.add_row({model, util::format_ms(per_job[0]),
                     util::format_ms(per_job[1]), util::format_ms(per_job[2]),
                     std::to_string(cut_depth[2]) + " vs " +
                         std::to_string(cut_depth[0]) + " local layers",
                     util::format_pct(1.0 - per_job[2] / per_job[0])});
    }
    std::cout << table;
  }
  std::cout << "\n(int8 transfer quarters every g value: the f >= g crossing\n"
               "moves to shallower cuts and 3G behaves like ~4.4 Mbps f32.)\n";
  return 0;
}
