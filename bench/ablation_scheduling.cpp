// Scheduling ablation: on identical JPS partitions, compare Johnson's rule
// (Alg. 1) against FIFO, reversed-Johnson and shuffled orders, plus the
// 3-stage check that the cloud stage is pipeline-hidden.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Ablation: scheduling",
                      "Johnson's rule vs FIFO / reversed / random orders on "
                      "the same partitions (4G, 100 jobs)");

  constexpr int kJobs = 100;
  constexpr double kMbps = net::kBandwidth4GMbps;

  util::Table table({"model", "Johnson (s)", "FIFO (s)", "reversed (s)",
                     "random avg (s)", "Johnson vs FIFO"});
  for (const auto& model : models::paper_eval_names()) {
    const bench::Testbed testbed(model);
    const auto curve = testbed.curve(kMbps);
    const core::Planner planner(curve);
    const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, kJobs);

    // The same job multiset under different orders.
    sched::JobList johnson_jobs = plan.scheduled_jobs;
    const double johnson = sched::flowshop2_makespan(johnson_jobs);

    // FIFO arrival order: the two job types interleave (e.g. frames from
    // alternating cameras), instead of Johnson's S1-then-S2 grouping.
    sched::JobList fifo;
    {
      sched::JobList s1(johnson_jobs.begin(),
                        johnson_jobs.begin() +
                            static_cast<long>(plan.comm_heavy_count));
      sched::JobList s2(johnson_jobs.begin() +
                            static_cast<long>(plan.comm_heavy_count),
                        johnson_jobs.end());
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < s1.size() || j < s2.size()) {
        if (i < s1.size()) fifo.push_back(s1[i++]);
        if (j < s2.size()) fifo.push_back(s2[j++]);
      }
    }
    const double fifo_ms = sched::flowshop2_makespan(fifo);

    sched::JobList reversed(johnson_jobs.rbegin(), johnson_jobs.rend());
    const double reversed_ms = sched::flowshop2_makespan(reversed);

    util::Rng rng(2021);
    double random_total = 0.0;
    constexpr int kShuffles = 20;
    sched::JobList shuffled = johnson_jobs;
    for (int i = 0; i < kShuffles; ++i) {
      std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
      random_total += sched::flowshop2_makespan(shuffled);
    }
    const double random_ms = random_total / kShuffles;

    table.add_row({model, util::format_fixed(johnson / 1e3, 2),
                   util::format_fixed(fifo_ms / 1e3, 2),
                   util::format_fixed(reversed_ms / 1e3, 2),
                   util::format_fixed(random_ms / 1e3, 2),
                   util::format_pct(1.0 - johnson / fifo_ms)});
  }
  std::cout << table;

  std::cout << "\n--- cloud stage visibility (3-stage vs 2-stage flow shop) ---\n";
  util::Table cloud_table({"model", "2-stage (s)", "3-stage (s)", "inflation"});
  for (const auto& model : models::paper_eval_names()) {
    const bench::Testbed testbed(model);
    const net::Channel channel(kMbps);
    partition::CurveOptions opt;
    opt.with_cloud_times = true;
    const auto curve = partition::ProfileCurve::build(
        testbed.graph(), testbed.mobile(), channel, opt, &testbed.cloud());
    const core::Planner planner(curve);
    core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, kJobs);
    sched::JobList with_cloud = plan.scheduled_jobs;
    for (auto& job : with_cloud)
      job.cloud = curve.cut(static_cast<std::size_t>(job.cut)).cloud;
    const double two = sched::flowshop2_makespan(plan.scheduled_jobs);
    const double three = sched::flowshop3_makespan(with_cloud);
    cloud_table.add_row({model, util::format_fixed(two / 1e3, 3),
                         util::format_fixed(three / 1e3, 3),
                         util::format_pct(three / two - 1.0)});
  }
  std::cout << cloud_table
            << "(validates §3.1's \"cloud computation time is negligible\" "
               "as a pipeline property, not an assumption)\n";
  return 0;
}
