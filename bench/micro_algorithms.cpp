// Google-benchmark micro suite: the costs behind Fig. 12(d)'s "overhead is
// negligible" claim — curve construction, Alg. 2 binary search vs linear
// scan, Johnson's rule, full planning, and the simulator's event throughput.
#include <benchmark/benchmark.h>

#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "sim/executor.h"
#include "util/rng.h"

namespace {

using namespace jps;

const dnn::Graph& alexnet_graph() {
  static const dnn::Graph g = models::build("alexnet");
  return g;
}

const profile::LatencyModel& mobile_model() {
  static const profile::LatencyModel m(
      profile::DeviceProfile::raspberry_pi_4b());
  return m;
}

partition::ProfileCurve alexnet_curve() {
  return partition::ProfileCurve::build(alexnet_graph(), mobile_model(),
                                        net::Channel::preset_4g());
}

// Synthetic monotone curve with k cut points (for scaling curves).
partition::ProfileCurve synthetic_curve(int k) {
  std::vector<partition::CutPoint> cuts;
  for (int i = 0; i <= k; ++i) {
    partition::CutPoint c;
    c.f = static_cast<double>(i);
    c.g = static_cast<double>(k - i);
    c.offload_bytes = i == k ? 0 : 1000;
    cuts.push_back(c);
  }
  partition::CurveOptions opt;
  opt.cluster = false;
  return partition::ProfileCurve::from_candidates("bench", std::move(cuts),
                                                  opt);
}

void BM_BuildModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::build("alexnet"));
  }
}
BENCHMARK(BM_BuildModel);

void BM_BuildCurve(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(alexnet_curve());
  }
}
BENCHMARK(BM_BuildCurve);

void BM_BinarySearchCut(benchmark::State& state) {
  const auto curve = synthetic_curve(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::binary_search_cut(curve));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BinarySearchCut)->RangeMultiplier(4)->Range(8, 8192)->Complexity(
    benchmark::oLogN);

void BM_LinearScanCut(benchmark::State& state) {
  const auto curve = synthetic_curve(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::linear_scan_cut(curve));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearScanCut)->RangeMultiplier(4)->Range(8, 8192)->Complexity(
    benchmark::oN);

void BM_JohnsonOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  sched::JobList jobs;
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = 0,
                              .f = rng.uniform(0.0, 10.0),
                              .g = rng.uniform(0.0, 10.0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::johnson_order(jobs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JohnsonOrder)->RangeMultiplier(8)->Range(8, 32768)->Complexity();

void BM_PlanJps(benchmark::State& state) {
  const core::Planner planner(alexnet_curve());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(core::Strategy::kJPS, n));
  }
}
BENCHMARK(BM_PlanJps)->Arg(10)->Arg(100)->Arg(1000);

void BM_PlanJpsHull(benchmark::State& state) {
  const core::Planner planner(alexnet_curve());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(core::Strategy::kJPSHull, n));
  }
}
BENCHMARK(BM_PlanJpsHull)->Arg(10)->Arg(100);

void BM_Flowshop2Makespan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  sched::JobList jobs;
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = 0,
                              .f = rng.uniform(0.0, 10.0),
                              .g = rng.uniform(0.0, 10.0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::flowshop2_makespan(jobs));
  }
}
BENCHMARK(BM_Flowshop2Makespan)->Arg(100)->Arg(10000);

void BM_SimulatePlan(benchmark::State& state) {
  const dnn::Graph& g = alexnet_graph();
  const auto curve = alexnet_curve();
  const core::Planner planner(curve);
  const core::ExecutionPlan plan =
      planner.plan(core::Strategy::kJPS, static_cast<int>(state.range(0)));
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel = net::Channel::preset_4g();
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(sim::simulate_plan(
        g, curve, plan, mobile_model(), cloud, channel, {}, rng));
  }
}
BENCHMARK(BM_SimulatePlan)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
