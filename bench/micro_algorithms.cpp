// Google-benchmark micro suite: the costs behind Fig. 12(d)'s "overhead is
// negligible" claim — curve construction, Alg. 2 binary search vs linear
// scan, Johnson's rule, full planning, and the simulator's event throughput —
// plus the parallel-runtime costs: pooled vs spawn-per-call parallel_for,
// Monte-Carlo campaign throughput, and cached vs uncached bandwidth sweeps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_cache.h"
#include "core/planner.h"
#include "models/registry.h"
#include "net/channel.h"
#include "partition/binary_search.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sched/johnson.h"
#include "sched/makespan.h"
#include "sim/executor.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace jps;

const dnn::Graph& alexnet_graph() {
  static const dnn::Graph g = models::build("alexnet");
  return g;
}

const profile::LatencyModel& mobile_model() {
  static const profile::LatencyModel m(
      profile::DeviceProfile::raspberry_pi_4b());
  return m;
}

partition::ProfileCurve alexnet_curve() {
  return partition::ProfileCurve::build(alexnet_graph(), mobile_model(),
                                        net::Channel::preset_4g());
}

// Synthetic monotone curve with k cut points (for scaling curves).
partition::ProfileCurve synthetic_curve(int k) {
  std::vector<partition::CutPoint> cuts;
  for (int i = 0; i <= k; ++i) {
    partition::CutPoint c;
    c.f = static_cast<double>(i);
    c.g = static_cast<double>(k - i);
    c.offload_bytes = i == k ? 0 : 1000;
    cuts.push_back(c);
  }
  partition::CurveOptions opt;
  opt.cluster = false;
  return partition::ProfileCurve::from_candidates("bench", std::move(cuts),
                                                  opt);
}

void BM_BuildModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::build("alexnet"));
  }
}
BENCHMARK(BM_BuildModel);

void BM_BuildCurve(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(alexnet_curve());
  }
}
BENCHMARK(BM_BuildCurve);

void BM_BinarySearchCut(benchmark::State& state) {
  const auto curve = synthetic_curve(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::binary_search_cut(curve));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BinarySearchCut)->RangeMultiplier(4)->Range(8, 8192)->Complexity(
    benchmark::oLogN);

void BM_LinearScanCut(benchmark::State& state) {
  const auto curve = synthetic_curve(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::linear_scan_cut(curve));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearScanCut)->RangeMultiplier(4)->Range(8, 8192)->Complexity(
    benchmark::oN);

void BM_JohnsonOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  sched::JobList jobs;
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = 0,
                              .f = rng.uniform(0.0, 10.0),
                              .g = rng.uniform(0.0, 10.0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::johnson_order(jobs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JohnsonOrder)->RangeMultiplier(8)->Range(8, 32768)->Complexity();

void BM_PlanJps(benchmark::State& state) {
  const core::Planner planner(alexnet_curve());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(core::Strategy::kJPS, n));
  }
}
BENCHMARK(BM_PlanJps)->Arg(10)->Arg(100)->Arg(1000);

void BM_PlanJpsHull(benchmark::State& state) {
  const core::Planner planner(alexnet_curve());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(core::Strategy::kJPSHull, n));
  }
}
// The two-type split sweep is O(n) in the job count now (it used to call
// finalize() per candidate split: O(n^2 log n)), so job counts in the tens
// of thousands plan in microseconds.
BENCHMARK(BM_PlanJpsHull)->Arg(10)->Arg(100)->Arg(1000)->Arg(100000);

void BM_PlanJpsTuned(benchmark::State& state) {
  const core::Planner planner(alexnet_curve());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(core::Strategy::kJPSTuned, n));
  }
}
BENCHMARK(BM_PlanJpsTuned)->Arg(100)->Arg(1000)->Arg(100000);

void BM_Flowshop2Makespan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  sched::JobList jobs;
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(sched::Job{.id = static_cast<int>(i),
                              .cut = 0,
                              .f = rng.uniform(0.0, 10.0),
                              .g = rng.uniform(0.0, 10.0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::flowshop2_makespan(jobs));
  }
}
BENCHMARK(BM_Flowshop2Makespan)->Arg(100)->Arg(10000);

void BM_SimulatePlan(benchmark::State& state) {
  const dnn::Graph& g = alexnet_graph();
  const auto curve = alexnet_curve();
  const core::Planner planner(curve);
  const core::ExecutionPlan plan =
      planner.plan(core::Strategy::kJPS, static_cast<int>(state.range(0)));
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel = net::Channel::preset_4g();
  for (auto _ : state) {
    util::Rng rng(3);
    benchmark::DoNotOptimize(sim::simulate_plan(
        g, curve, plan, mobile_model(), cloud, channel, {}, rng));
  }
}
BENCHMARK(BM_SimulatePlan)->Arg(10)->Arg(100);

// --- Parallel runtime -----------------------------------------------------

// A deliberately small per-index body: thread churn dominates exactly here.
void busy_body(std::size_t i, std::atomic<long long>& acc) {
  double x = static_cast<double>(i);
  for (int k = 0; k < 64; ++k) x = x * 1.0000001 + 0.5;
  acc.fetch_add(static_cast<long long>(x), std::memory_order_relaxed);
}

// The seed implementation: spawn and join a fresh std::thread team on every
// call.  Kept here (only) as the baseline the pooled dispatch replaced.
void spawn_per_call_parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  const std::size_t threads =
      std::min<std::size_t>(util::default_thread_count(), count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> team;
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    team.emplace_back([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (auto& th : team) th.join();
}

void BM_ParallelForSpawnPerCall(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<long long> acc{0};
  for (auto _ : state)
    spawn_per_call_parallel_for(count,
                                [&](std::size_t i) { busy_body(i, acc); });
  benchmark::DoNotOptimize(acc.load());
}
BENCHMARK(BM_ParallelForSpawnPerCall)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ParallelForPooled(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::atomic<long long> acc{0};
  for (auto _ : state)
    util::parallel_for(count, [&](std::size_t i) { busy_body(i, acc); });
  benchmark::DoNotOptimize(acc.load());
}
BENCHMARK(BM_ParallelForPooled)->Arg(64)->Arg(1024)->Arg(16384);

// Monte-Carlo campaign throughput.  Arg = thread cap (0 = all cores via the
// shared pool); compare Arg(1) to Arg(0) for the parallel speedup on this
// machine.  The summaries are bit-identical across thread counts.
void BM_MonteCarloMakespan(benchmark::State& state) {
  const dnn::Graph& g = alexnet_graph();
  const auto curve = alexnet_curve();
  const core::Planner planner(curve);
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, 20);
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel channel = net::Channel::preset_4g();
  sim::MonteCarloOptions options;
  options.trials = 1000;
  options.comp_noise_sigma = 0.10;
  options.comm_noise_sigma = 0.10;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo_makespan(
        g, curve, plan, mobile_model(), cloud, channel, options));
  }
  state.counters["trials"] = static_cast<double>(options.trials);
}
BENCHMARK(BM_MonteCarloMakespan)->Arg(1)->Arg(0);

// --- Plan cache -----------------------------------------------------------

const std::vector<double>& sweep_bandwidths() {
  static const std::vector<double> mbps = [] {
    std::vector<double> v;
    for (double b = 1.0; b <= 20.0; b += 1.0) v.push_back(b);
    return v;
  }();
  return mbps;
}

// One fig13-style column: curve + JPS plan per bandwidth, rebuilt from
// scratch every time (the pre-cache serving cost).
void BM_BandwidthSweepUncached(benchmark::State& state) {
  const dnn::Graph& g = alexnet_graph();
  for (auto _ : state) {
    double total = 0.0;
    for (const double mbps : sweep_bandwidths()) {
      const auto curve = partition::ProfileCurve::build(g, mobile_model(),
                                                        net::Channel(mbps));
      total +=
          core::Planner(curve).plan(core::Strategy::kJPS, 100).predicted_makespan;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_BandwidthSweepUncached);

// The same sweep through a PlanCache: the first iteration misses, every
// later one is pure lookup.  The reported hit_rate counter approaches 1.
void BM_BandwidthSweepCached(benchmark::State& state) {
  const dnn::Graph& g = alexnet_graph();
  core::PlanCache cache;
  const std::string device = profile::DeviceProfile::raspberry_pi_4b().name;
  for (auto _ : state) {
    double total = 0.0;
    for (const double mbps : sweep_bandwidths()) {
      const auto curve =
          cache.curve({"alexnet", device, mbps}, [&] {
            return partition::ProfileCurve::build(g, mobile_model(),
                                                  net::Channel(mbps));
          });
      const auto plan =
          cache.plan({"alexnet", device, mbps, core::Strategy::kJPS, 100},
                     [&] {
                       return core::Planner(*curve).plan(core::Strategy::kJPS,
                                                         100);
                     });
      total += plan->predicted_makespan;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_BandwidthSweepCached);

}  // namespace

BENCHMARK_MAIN();
