#include "common.h"

#include <cstdlib>
#include <iostream>
#include <set>

#include "models/registry.h"
#include "obs/obs.h"
#include "obs/trace_writer.h"
#include "sim/trace.h"

namespace jps::bench {

Testbed::Testbed(const std::string& model_name)
    : graph_(models::build(model_name)),
      mobile_(profile::DeviceProfile::raspberry_pi_4b()),
      cloud_(profile::DeviceProfile::cloud_gtx1080()) {}

std::shared_ptr<const partition::ProfileCurve> Testbed::cached_curve(
    double mbps) const {
  return core::PlanCache::global().curve(
      {graph_.name(), mobile_.device().name, mbps}, [&] {
        return partition::ProfileCurve::build(graph_, mobile_,
                                              net::Channel(mbps));
      });
}

std::shared_ptr<const core::ExecutionPlan> Testbed::cached_plan(
    core::Strategy strategy, double mbps, int n_jobs) const {
  return core::PlanCache::global().plan(
      {graph_.name(), mobile_.device().name, mbps, strategy, n_jobs}, [&] {
        return core::Planner(*cached_curve(mbps)).plan(strategy, n_jobs);
      });
}

partition::ProfileCurve Testbed::curve(double mbps) const {
  return *cached_curve(mbps);
}

Testbed::Outcome Testbed::run(core::Strategy strategy, double mbps, int n_jobs,
                              std::uint64_t seed,
                              sim::EventSimulator* capture) const {
  const net::Channel channel(mbps);
  const std::shared_ptr<const partition::ProfileCurve> c = cached_curve(mbps);
  Outcome outcome;
  outcome.plan = *cached_plan(strategy, mbps, n_jobs);
  util::Rng rng(seed);
  outcome.simulated_makespan =
      sim::simulate_plan(graph_, *c, outcome.plan, mobile_, cloud_, channel,
                         sim::SimOptions{}, rng, capture)
          .makespan;
  return outcome;
}

double Testbed::simulate(core::Strategy strategy, double mbps, int n_jobs,
                         std::uint64_t seed) const {
  return run(strategy, mbps, n_jobs, seed).simulated_makespan;
}

std::unique_ptr<util::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header) {
  const char* dir = std::getenv("JPS_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  auto writer = std::make_unique<util::CsvWriter>(path, header);
  std::cout << "(writing series to " << path << ")\n";
  return writer;
}

std::string maybe_trace_path(const std::string& name) {
  const char* dir = std::getenv("JPS_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  obs::set_enabled(true);
  return std::string(dir) + "/" + name + ".json";
}

void write_trace_file(const std::string& path,
                      const sim::EventSimulator* timeline) {
  if (path.empty()) return;
  obs::TraceWriter writer;
  writer.set_process_name(0, "jps instrumentation");
  const std::vector<obs::SpanRecord> spans = obs::Registry::global().spans();
  std::set<std::uint64_t> threads;
  for (const obs::SpanRecord& span : spans) threads.insert(span.thread);
  // Registered names (pool-worker-N, serve-conn-N) beat the numeric default.
  std::map<std::uint64_t, std::string> names;
  for (const auto& [t, name] : obs::Registry::global().thread_names())
    names[t] = name;
  for (const std::uint64_t t : threads) {
    const auto it = names.find(t);
    writer.set_thread_name(
        0, t, it != names.end() ? it->second : "thread " + std::to_string(t));
  }
  writer.add_spans(spans, 0);
  writer.add_counter_snapshot(obs::Registry::global().counters(), 0);
  if (timeline != nullptr) sim::append_chrome_trace(*timeline, writer, 1);
  writer.save(path);
  std::cout << "(trace written to " << path
            << "; open in about:tracing or Perfetto)\n";
}

void print_cache_stats(const std::string& label) {
  const core::PlanCache::Stats s = core::PlanCache::global().stats();
  std::cout << label << ": plan cache " << s.curve_hits << "/"
            << (s.curve_hits + s.curve_misses) << " curve hits, "
            << s.plan_hits << "/" << (s.plan_hits + s.plan_misses)
            << " plan hits (" << static_cast<int>(100.0 * s.hit_rate() + 0.5)
            << "% overall)\n";
}

void print_banner(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << figure << " — Duan & Wu, ICPP 2021\n"
            << description << "\n"
            << "Substrate: simulated Pi-4B mobile / GTX1080 cloud testbed\n"
            << "(shapes are the comparison target, not absolute ms; see\n"
            << "EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

}  // namespace jps::bench
