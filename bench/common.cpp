#include "common.h"

#include <iostream>

#include "models/registry.h"

namespace jps::bench {

Testbed::Testbed(const std::string& model_name)
    : graph_(models::build(model_name)),
      mobile_(profile::DeviceProfile::raspberry_pi_4b()),
      cloud_(profile::DeviceProfile::cloud_gtx1080()) {}

std::shared_ptr<const partition::ProfileCurve> Testbed::cached_curve(
    double mbps) const {
  return core::PlanCache::global().curve(
      {graph_.name(), mobile_.device().name, mbps}, [&] {
        return partition::ProfileCurve::build(graph_, mobile_,
                                              net::Channel(mbps));
      });
}

std::shared_ptr<const core::ExecutionPlan> Testbed::cached_plan(
    core::Strategy strategy, double mbps, int n_jobs) const {
  return core::PlanCache::global().plan(
      {graph_.name(), mobile_.device().name, mbps, strategy, n_jobs}, [&] {
        return core::Planner(*cached_curve(mbps)).plan(strategy, n_jobs);
      });
}

partition::ProfileCurve Testbed::curve(double mbps) const {
  return *cached_curve(mbps);
}

Testbed::Outcome Testbed::run(core::Strategy strategy, double mbps, int n_jobs,
                              std::uint64_t seed) const {
  const net::Channel channel(mbps);
  const std::shared_ptr<const partition::ProfileCurve> c = cached_curve(mbps);
  Outcome outcome;
  outcome.plan = *cached_plan(strategy, mbps, n_jobs);
  util::Rng rng(seed);
  outcome.simulated_makespan =
      sim::simulate_plan(graph_, *c, outcome.plan, mobile_, cloud_, channel,
                         sim::SimOptions{}, rng)
          .makespan;
  return outcome;
}

double Testbed::simulate(core::Strategy strategy, double mbps, int n_jobs,
                         std::uint64_t seed) const {
  return run(strategy, mbps, n_jobs, seed).simulated_makespan;
}

std::unique_ptr<util::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header) {
  const char* dir = std::getenv("JPS_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  auto writer = std::make_unique<util::CsvWriter>(path, header);
  std::cout << "(writing series to " << path << ")\n";
  return writer;
}

void print_cache_stats(const std::string& label) {
  const core::PlanCache::Stats s = core::PlanCache::global().stats();
  std::cout << label << ": plan cache " << s.curve_hits << "/"
            << (s.curve_hits + s.curve_misses) << " curve hits, "
            << s.plan_hits << "/" << (s.plan_hits + s.plan_misses)
            << " plan hits (" << static_cast<int>(100.0 * s.hit_rate() + 0.5)
            << "% overall)\n";
}

void print_banner(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << figure << " — Duan & Wu, ICPP 2021\n"
            << description << "\n"
            << "Substrate: simulated Pi-4B mobile / GTX1080 cloud testbed\n"
            << "(shapes are the comparison target, not absolute ms; see\n"
            << "EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

}  // namespace jps::bench
