#include "common.h"

#include <iostream>

#include "models/registry.h"

namespace jps::bench {

Testbed::Testbed(const std::string& model_name)
    : graph_(models::build(model_name)),
      mobile_(profile::DeviceProfile::raspberry_pi_4b()),
      cloud_(profile::DeviceProfile::cloud_gtx1080()) {}

partition::ProfileCurve Testbed::curve(double mbps) const {
  return partition::ProfileCurve::build(graph_, mobile_, net::Channel(mbps));
}

Testbed::Outcome Testbed::run(core::Strategy strategy, double mbps, int n_jobs,
                              std::uint64_t seed) const {
  const net::Channel channel(mbps);
  const partition::ProfileCurve c = curve(mbps);
  const core::Planner planner(c);
  Outcome outcome;
  outcome.plan = planner.plan(strategy, n_jobs);
  util::Rng rng(seed);
  outcome.simulated_makespan =
      sim::simulate_plan(graph_, c, outcome.plan, mobile_, cloud_, channel,
                         sim::SimOptions{}, rng)
          .makespan;
  return outcome;
}

double Testbed::simulate(core::Strategy strategy, double mbps, int n_jobs,
                         std::uint64_t seed) const {
  return run(strategy, mbps, n_jobs, seed).simulated_makespan;
}

std::unique_ptr<util::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header) {
  const char* dir = std::getenv("JPS_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  auto writer = std::make_unique<util::CsvWriter>(path, header);
  std::cout << "(writing series to " << path << ")\n";
  return writer;
}

void print_banner(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << figure << " — Duan & Wu, ICPP 2021\n"
            << description << "\n"
            << "Substrate: simulated Pi-4B mobile / GTX1080 cloud testbed\n"
            << "(shapes are the comparison target, not absolute ms; see\n"
            << "EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

}  // namespace jps::bench
