// Extension bench: M mobile devices sharing one uplink.  Compares the naive
// policy (every device plans as if it owned the link) against fair-share
// planning (each plans for bandwidth/M), executed on the real shared link.
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "sim/shared_link.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: shared uplink",
                      "M Pi-class devices x 6 AlexNet jobs each on one 5.85 "
                      "Mbps link: plan-for-full vs plan-for-share");

  const dnn::Graph graph = models::build("alexnet");
  const profile::LatencyModel cloud(profile::DeviceProfile::cloud_gtx1080());
  const net::Channel link(net::kBandwidth4GMbps);

  util::Table table({"devices", "naive makespan (s)", "fair-share (s)",
                     "fair-share gain", "naive link busy", "fair link busy"});
  for (const int m : {1, 2, 4, 8}) {
    std::vector<sim::SharedDevice> devices;
    for (int d = 0; d < m; ++d) {
      devices.push_back({"dev" + std::to_string(d), &graph,
                         profile::LatencyModel(
                             profile::DeviceProfile::raspberry_pi_4b()),
                         6});
    }
    util::Rng rng_naive(1);
    util::Rng rng_fair(1);
    const sim::SharedLinkResult naive = sim::plan_and_simulate_shared(
        devices, link, core::Strategy::kJPS, sim::SharePolicy::kFullBandwidth,
        cloud, {}, rng_naive);
    const sim::SharedLinkResult fair = sim::plan_and_simulate_shared(
        devices, link, core::Strategy::kJPS, sim::SharePolicy::kFairShare,
        cloud, {}, rng_fair);
    table.add_row({std::to_string(m),
                   util::format_fixed(naive.makespan / 1e3, 2),
                   util::format_fixed(fair.makespan / 1e3, 2),
                   util::format_pct(1.0 - fair.makespan / naive.makespan),
                   util::format_pct(naive.link_utilization),
                   util::format_pct(fair.link_utilization)});
  }
  std::cout << table
            << "\n(With contention, planning against the full bandwidth\n"
               "over-offloads and queues at the link; fair-share planning\n"
               "moves every device's cuts deeper.  At M = 1 both policies\n"
               "coincide by construction.)\n";
  return 0;
}
