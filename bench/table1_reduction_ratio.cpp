// Table 1 — Latency reduction ratio of PO and JPS compared with LO (%),
// per model and per network (3G / 4G / Wi-Fi), 100 jobs.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Table 1",
                      "Latency reduction ratio of PO and JPS vs LO (%), 100 "
                      "jobs, simulated makespans");

  constexpr int kJobs = 100;
  const double kBandwidths[] = {net::kBandwidth3GMbps, net::kBandwidth4GMbps,
                                net::kBandwidthWiFiMbps};

  util::Table table({"model", "3G PO", "3G JPS", "4G PO", "4G JPS",
                     "Wi-Fi PO", "Wi-Fi JPS"});
  for (const auto& model : models::paper_eval_names()) {
    const bench::Testbed testbed(model);
    std::vector<std::string> row{model};
    for (const double mbps : kBandwidths) {
      const double lo = testbed.simulate(core::Strategy::kLocalOnly, mbps, kJobs);
      const double po =
          testbed.simulate(core::Strategy::kPartitionOnly, mbps, kJobs);
      const double jps = testbed.simulate(core::Strategy::kJPS, mbps, kJobs);
      // The paper reports reductions vs LO, clamped at 0 (PO never does
      // worse than LO because LO is in its search space).
      row.push_back(util::format_fixed(std::max(0.0, 1.0 - po / lo) * 100, 2));
      row.push_back(util::format_fixed(std::max(0.0, 1.0 - jps / lo) * 100, 2));
    }
    table.add_row(row);
  }
  std::cout << table;
  std::cout
      << "\nPaper's Table 1 for reference (%):\n"
         "  AlexNet       3G 0.00/22.06   4G 33.33/42.11   WiFi 63.91/73.43\n"
         "  MobileNet-v2  3G 27.60/56.73  4G 60.00/78.83   WiFi 82.81/84.69\n"
         "  GoogLeNet     3G 0.00/52.83   4G 56.13/71.93   WiFi 66.63/72.17\n"
         "  ResNet18      3G 0.00/0.73    4G 1.46/28.22    WiFi 58.52/58.52\n"
         "Shape checks reproduced: JPS >= PO everywhere; PO == 0 for\n"
         "AlexNet/GoogLeNet at 3G; reductions grow with bandwidth.  Known\n"
         "deviation: our fp32 tensor sizes make mid-network GoogLeNet\n"
         "offloads too large for 1.1 Mbps, so its 3G JPS gain is smaller\n"
         "than the paper's 52.83% (see EXPERIMENTS.md).\n";
  return 0;
}
