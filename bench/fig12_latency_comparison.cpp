// Fig. 12(a-c) — Total inference latency of LO / CO / PO / JPS on AlexNet,
// GoogLeNet, MobileNet-v2 and ResNet-18 under 3G / 4G / Wi-Fi, 100 jobs.
// Fig. 12(d) — JPS decision overhead relative to the inference time.
// Makespans are validated end-to-end on the discrete-event simulator.
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "reporter.h"
#include "sim/event_sim.h"
#include "util/table.h"

int main() {
  using namespace jps;
  // JPS_TRACE_DIR=dir turns the whole bench into a Chrome trace.
  const std::string trace_path = bench::maybe_trace_path("fig12");
  bench::print_banner(
      "Figure 12",
      "Total latency of LO/CO/PO/JPS, 100 jobs per DNN, at the paper's\n"
      "3G (1.1), 4G (5.85) and Wi-Fi (18.88 Mbps) uplinks + JPS overhead");

  const int kJobs = bench::quick_scaled(100, 20);
  bench::BenchReporter reporter("fig12_latency_comparison");
  reporter.set_iterations(kJobs);
  reporter.note("jobs", kJobs);
  reporter.note("networks", 3);
  const struct {
    const char* label;
    double mbps;
  } kNetworks[] = {{"3G (1.1 Mbps)", net::kBandwidth3GMbps},
                   {"4G (5.85 Mbps)", net::kBandwidth4GMbps},
                   {"Wi-Fi (18.88 Mbps)", net::kBandwidthWiFiMbps}};

  auto csv = bench::maybe_csv(
      "fig12", {"network_mbps", "model", "co_ms", "lo_ms", "po_ms", "jps_ms"});
  for (const auto& network : kNetworks) {
    std::cout << "\n--- " << network.label << " (simulated makespan / " << kJobs
              << " jobs, ms per job) ---\n";
    util::Table table(
        {"model", "CO", "LO", "PO", "JPS", "JPS vs best baseline"});
    for (const auto& model : models::paper_eval_names()) {
      const bench::Testbed testbed(model);
      const double co =
          testbed.simulate(core::Strategy::kCloudOnly, network.mbps, kJobs);
      const double lo =
          testbed.simulate(core::Strategy::kLocalOnly, network.mbps, kJobs);
      const double po = testbed.simulate(core::Strategy::kPartitionOnly,
                                         network.mbps, kJobs);
      const double jps =
          testbed.simulate(core::Strategy::kJPS, network.mbps, kJobs);
      const double best_baseline = std::min({co, lo, po});
      // One sample per (network, model) cell; the BENCH file carries the
      // distribution across all cells of the figure.
      reporter.record("co_ms_per_job", co / kJobs);
      reporter.record("lo_ms_per_job", lo / kJobs);
      reporter.record("po_ms_per_job", po / kJobs);
      reporter.record("jps_ms_per_job", jps / kJobs);
      if (csv) {
        csv->add_row({util::format_fixed(network.mbps, 2), model,
                      util::format_fixed(co / kJobs, 3),
                      util::format_fixed(lo / kJobs, 3),
                      util::format_fixed(po / kJobs, 3),
                      util::format_fixed(jps / kJobs, 3)});
      }
      table.add_row({model,
                     network.mbps < 2.0 ? "> " + util::format_ms(co / kJobs)
                                        : util::format_ms(co / kJobs),
                     util::format_ms(lo / kJobs), util::format_ms(po / kJobs),
                     util::format_ms(jps / kJobs),
                     util::format_pct(1.0 - jps / best_baseline)});
    }
    std::cout << table;
    if (network.mbps < 2.0) {
      std::cout << "(paper omits the CO bar at 3G: \"more than 4,000 ms\")\n";
    }
  }

  // Fig. 12(d): planner overhead normalized by per-job inference latency.
  std::cout << "\n--- Fig. 12(d): JPS decision overhead ---\n";
  util::Table overhead({"model", "plan overhead (ms)", "per-job latency (ms)",
                        "overhead ratio"});
  sim::EventSimulator timeline;  // last model's simulated run, for the trace
  for (const auto& model : models::paper_eval_names()) {
    const bench::Testbed testbed(model);
    const auto outcome = testbed.run(core::Strategy::kJPS,
                                     net::kBandwidth4GMbps, kJobs, 1,
                                     trace_path.empty() ? nullptr : &timeline);
    const double per_job = outcome.simulated_makespan / kJobs;
    reporter.record("decision_overhead_ms", outcome.plan.decision_overhead_ms);
    overhead.add_row({model,
                      util::format_ms(outcome.plan.decision_overhead_ms),
                      util::format_ms(per_job),
                      util::format_pct(outcome.plan.decision_overhead_ms /
                                       per_job)});
  }
  std::cout << overhead
            << "(paper: overhead is negligible thanks to the lookup table +\n"
               "linear-regression estimators and the O(log k) search)\n";
  bench::write_trace_file(trace_path,
                          trace_path.empty() ? nullptr : &timeline);
  return 0;
}
