// Fig. 13 — Inference latency of LO / CO / PO / JPS under bandwidths from
// 1 to 80 Mbps, for AlexNet and MobileNet-v2 (50 jobs, per-job ms).  The
// "benefit range" is the bandwidth interval where JPS strictly beats both
// trivial strategies.
//
// The bench also measures planner throughput on this sweep's hot path:
// per-point scalar planning (curve rebase + Planner + plan per bandwidth)
// versus the batched Planner::plan_sweep over the curve's SoA lanes, and
// verifies the two agree bit-for-bit before reporting plans_per_sec /
// plans_per_sec_scalar / plan_sweep_speedup.  A disagreement exits 1, so
// any CI job running this bench gates the batched path's correctness.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "common.h"
#include "reporter.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

// Bit-identity of one sweep lane against the scalar per-point plan: same
// makespan double, same cut multiset.
bool lane_matches_scalar(const jps::core::PlanSweep& sweep, std::size_t p,
                         const jps::core::ExecutionPlan& scalar) {
  if (sweep.makespan_ms[p] != scalar.predicted_makespan) return false;
  std::vector<std::size_t> expected(
      static_cast<std::size_t>(sweep.n_jobs), sweep.cut_b[p]);
  for (int i = 0; i < sweep.n_a[p]; ++i)
    expected[static_cast<std::size_t>(i)] = sweep.cut_a[p];
  std::vector<std::size_t> actual;
  actual.reserve(scalar.jobs.size());
  for (const auto& job : scalar.jobs) actual.push_back(job.cut_index);
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  return expected == actual;
}

}  // namespace

int main() {
  using namespace jps;
  bench::print_banner("Figure 13",
                      "Latency vs uplink bandwidth in [1, 80] Mbps for "
                      "AlexNet and MobileNet-v2; benefit range of JPS");

  const int kJobs = bench::quick_scaled(50, 10);
  // Quick mode coarsens the sweep 4x; the benefit-range endpoints get
  // blurrier but the BENCH distributions stay comparable in shape.
  const double step_lo = bench::quick_mode() ? 4.0 : 1.0;
  const double step_hi = bench::quick_mode() ? 16.0 : 4.0;
  std::vector<double> bandwidths;
  for (double b = 1.0; b <= 80.0; b += (b < 20.0 ? step_lo : step_hi))
    bandwidths.push_back(b);

  bench::BenchReporter reporter("fig13_bandwidth_sweep");
  reporter.set_iterations(static_cast<int>(bandwidths.size()));
  reporter.note("jobs", kJobs);
  reporter.note("points", static_cast<int>(bandwidths.size()));

  for (const char* model : {"alexnet", "mobilenet_v2"}) {
    const bench::Testbed testbed(model);
    std::cout << "\n--- " << model << " (per-job ms, simulated) ---\n";
    util::Table table({"Mbps", "LO", "CO", "PO", "JPS", "JPS wins"});
    auto csv = bench::maybe_csv(std::string("fig13_") + model,
                                {"mbps", "lo_ms", "co_ms", "po_ms", "jps_ms"});

    struct Row {
      double lo, co, po, jps;
    };
    std::vector<Row> rows(bandwidths.size());
    // Points are independent; sweep them across cores.
    util::parallel_for(bandwidths.size(), [&](std::size_t i) {
      const double mbps = bandwidths[i];
      rows[i].lo = testbed.simulate(core::Strategy::kLocalOnly, mbps, kJobs);
      rows[i].co = testbed.simulate(core::Strategy::kCloudOnly, mbps, kJobs);
      rows[i].po =
          testbed.simulate(core::Strategy::kPartitionOnly, mbps, kJobs);
      rows[i].jps = testbed.simulate(core::Strategy::kJPS, mbps, kJobs);
    });

    double benefit_lo = -1.0;
    double benefit_hi = -1.0;
    for (std::size_t i = 0; i < bandwidths.size(); ++i) {
      const Row& r = rows[i];
      reporter.record("lo_ms_per_job", r.lo / kJobs);
      reporter.record("co_ms_per_job", r.co / kJobs);
      reporter.record("po_ms_per_job", r.po / kJobs);
      reporter.record("jps_ms_per_job", r.jps / kJobs);
      const bool wins = r.jps < std::min(r.lo, r.co) * 0.999;
      if (wins && benefit_lo < 0.0) benefit_lo = bandwidths[i];
      if (wins) benefit_hi = bandwidths[i];
      table.add_row({util::format_fixed(bandwidths[i], 0),
                     util::format_ms(r.lo / kJobs), util::format_ms(r.co / kJobs),
                     util::format_ms(r.po / kJobs),
                     util::format_ms(r.jps / kJobs), wins ? "yes" : ""});
      if (csv) {
        csv->add_row(std::vector<double>{bandwidths[i], r.lo / kJobs,
                                         r.co / kJobs, r.po / kJobs,
                                         r.jps / kJobs});
      }
    }
    std::cout << table;
    std::cout << "benefit range of JPS over min(LO, CO): ["
              << util::format_fixed(benefit_lo, 0) << ", "
              << util::format_fixed(benefit_hi, 0) << "] Mbps\n"
              << "(paper: both models speed up across [1, 20] Mbps — 3G\n"
              << "through Wi-Fi — with AlexNet's range extending past 50)\n";
    bench::print_cache_stats(model);
  }

  // --- Planner throughput: scalar per-point path vs batched plan_sweep ---
  {
    using Clock = std::chrono::steady_clock;
    const auto seconds = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    const bench::Testbed testbed("alexnet");
    const double kNominalMbps = 10.0;
    const net::Channel channel(kNominalMbps);
    const partition::ProfileCurve base = testbed.curve(kNominalMbps);
    const core::Planner planner(base);
    const core::Strategy kStrategy = core::Strategy::kJPSTuned;

    // A dense grid: the throughput question only matters at sweep scale.
    const int kPoints = bench::quick_scaled(2000, 300);
    std::vector<double> grid;
    grid.reserve(static_cast<std::size_t>(kPoints));
    for (int i = 0; i < kPoints; ++i)
      grid.push_back(1.0 + 79.0 * static_cast<double>(i) /
                               static_cast<double>(kPoints - 1));

    // Scalar pass: exactly what this bench (and any per-request service)
    // did per point before plan_sweep existed.  Keep the plans for the
    // bit-identity check below.
    std::vector<core::ExecutionPlan> scalar_plans;
    scalar_plans.reserve(grid.size());
    const auto scalar_start = Clock::now();
    for (const double mbps : grid)
      scalar_plans.push_back(
          core::Planner(base.with_bandwidth(channel, mbps))
              .plan(kStrategy, kJobs));
    const double scalar_s = seconds(scalar_start, Clock::now());

    // Batched pass, repeated for a measurable interval.
    const int kReps = 32;
    core::PlanSweep sweep;
    const auto batched_start = Clock::now();
    for (int r = 0; r < kReps; ++r)
      sweep = planner.plan_sweep(kStrategy, kJobs, grid, channel);
    const double batched_s = seconds(batched_start, Clock::now()) / kReps;

    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (!lane_matches_scalar(sweep, p, scalar_plans[p])) {
        std::cerr << "FAIL: plan_sweep diverges from the scalar planner at "
                  << grid[p] << " Mbps (batched " << sweep.makespan_ms[p]
                  << " ms vs scalar " << scalar_plans[p].predicted_makespan
                  << " ms)\n";
        return 1;
      }
    }

    const double per_sec_scalar = static_cast<double>(kPoints) / scalar_s;
    const double per_sec_batched = static_cast<double>(kPoints) / batched_s;
    const double speedup = per_sec_batched / per_sec_scalar;
    reporter.note("sweep_points", kPoints);
    reporter.note("sweep_strategy", "JPS*");
    reporter.record("plans_per_sec", per_sec_batched);
    reporter.record("plans_per_sec_scalar", per_sec_scalar);
    reporter.record("plan_sweep_speedup", speedup);
    std::cout << "\n--- planner throughput (" << kPoints
              << "-point JPS* sweep, " << kJobs << " jobs) ---\n"
              << "scalar per-point path: " << util::format_fixed(per_sec_scalar, 0)
              << " plans/s\n"
              << "batched plan_sweep:    " << util::format_fixed(per_sec_batched, 0)
              << " plans/s  (" << util::format_fixed(speedup, 1)
              << "x, bit-identical to scalar)\n";
  }
  return 0;
}
