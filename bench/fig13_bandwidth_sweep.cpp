// Fig. 13 — Inference latency of LO / CO / PO / JPS under bandwidths from
// 1 to 80 Mbps, for AlexNet and MobileNet-v2 (50 jobs, per-job ms).  The
// "benefit range" is the bandwidth interval where JPS strictly beats both
// trivial strategies.
#include <iostream>
#include <vector>

#include "common.h"
#include "reporter.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace jps;
  bench::print_banner("Figure 13",
                      "Latency vs uplink bandwidth in [1, 80] Mbps for "
                      "AlexNet and MobileNet-v2; benefit range of JPS");

  const int kJobs = bench::quick_scaled(50, 10);
  // Quick mode coarsens the sweep 4x; the benefit-range endpoints get
  // blurrier but the BENCH distributions stay comparable in shape.
  const double step_lo = bench::quick_mode() ? 4.0 : 1.0;
  const double step_hi = bench::quick_mode() ? 16.0 : 4.0;
  std::vector<double> bandwidths;
  for (double b = 1.0; b <= 80.0; b += (b < 20.0 ? step_lo : step_hi))
    bandwidths.push_back(b);

  bench::BenchReporter reporter("fig13_bandwidth_sweep");
  reporter.set_iterations(static_cast<int>(bandwidths.size()));
  reporter.note("jobs", kJobs);
  reporter.note("points", static_cast<int>(bandwidths.size()));

  for (const char* model : {"alexnet", "mobilenet_v2"}) {
    const bench::Testbed testbed(model);
    std::cout << "\n--- " << model << " (per-job ms, simulated) ---\n";
    util::Table table({"Mbps", "LO", "CO", "PO", "JPS", "JPS wins"});
    auto csv = bench::maybe_csv(std::string("fig13_") + model,
                                {"mbps", "lo_ms", "co_ms", "po_ms", "jps_ms"});

    struct Row {
      double lo, co, po, jps;
    };
    std::vector<Row> rows(bandwidths.size());
    // Points are independent; sweep them across cores.
    util::parallel_for(bandwidths.size(), [&](std::size_t i) {
      const double mbps = bandwidths[i];
      rows[i].lo = testbed.simulate(core::Strategy::kLocalOnly, mbps, kJobs);
      rows[i].co = testbed.simulate(core::Strategy::kCloudOnly, mbps, kJobs);
      rows[i].po =
          testbed.simulate(core::Strategy::kPartitionOnly, mbps, kJobs);
      rows[i].jps = testbed.simulate(core::Strategy::kJPS, mbps, kJobs);
    });

    double benefit_lo = -1.0;
    double benefit_hi = -1.0;
    for (std::size_t i = 0; i < bandwidths.size(); ++i) {
      const Row& r = rows[i];
      reporter.record("lo_ms_per_job", r.lo / kJobs);
      reporter.record("co_ms_per_job", r.co / kJobs);
      reporter.record("po_ms_per_job", r.po / kJobs);
      reporter.record("jps_ms_per_job", r.jps / kJobs);
      const bool wins = r.jps < std::min(r.lo, r.co) * 0.999;
      if (wins && benefit_lo < 0.0) benefit_lo = bandwidths[i];
      if (wins) benefit_hi = bandwidths[i];
      table.add_row({util::format_fixed(bandwidths[i], 0),
                     util::format_ms(r.lo / kJobs), util::format_ms(r.co / kJobs),
                     util::format_ms(r.po / kJobs),
                     util::format_ms(r.jps / kJobs), wins ? "yes" : ""});
      if (csv) {
        csv->add_row(std::vector<double>{bandwidths[i], r.lo / kJobs,
                                         r.co / kJobs, r.po / kJobs,
                                         r.jps / kJobs});
      }
    }
    std::cout << table;
    std::cout << "benefit range of JPS over min(LO, CO): ["
              << util::format_fixed(benefit_lo, 0) << ", "
              << util::format_fixed(benefit_hi, 0) << "] Mbps\n"
              << "(paper: both models speed up across [1, 20] Mbps — 3G\n"
              << "through Wi-Fi — with AlexNet's range extending past 50)\n";
    bench::print_cache_stats(model);
  }
  return 0;
}
