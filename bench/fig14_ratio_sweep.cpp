// Fig. 14 — Impact of the ratio between computation-heavy and
// communication-heavy jobs on the makespan, for ResNet-18 and GoogLeNet at
// 9 / 10 / 11 Mbps (100 jobs).  The paper observes the optimal ratio is not
// 1 and shifts with bandwidth.
#include <iostream>
#include <vector>

#include "common.h"
#include "core/ratio.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Figure 14",
                      "Makespan vs computation-/communication-heavy job mix "
                      "for ResNet-18 and GoogLeNet at 9/10/11 Mbps");

  constexpr int kJobs = 100;
  for (const char* model : {"resnet18", "googlenet"}) {
    const bench::Testbed testbed(model);
    std::cout << "\n--- " << model << " (makespan of " << kJobs
              << " jobs, s) ---\n";
    util::Table table({"ratio comp:comm", "9 Mbps", "10 Mbps", "11 Mbps"});

    // One sweep per bandwidth on that bandwidth's own Alg. 2 pair.  The
    // pairs for all three rates come from a single batched plan_sweep over
    // the curve's SoA lanes (JPS's cut_a/cut_b are exactly the scalar
    // path's comm_cut/l_star), instead of one binary_search_cut per rate.
    const std::vector<double> kRates = {9.0, 10.0, 11.0};
    const net::Channel channel(kRates.front());
    const core::Planner planner(testbed.curve(kRates.front()));
    const core::PlanSweep decisions =
        planner.plan_sweep(core::Strategy::kJPS, kJobs, kRates, channel);

    struct Sweep {
      std::vector<core::RatioPoint> points;
      core::RatioPoint best;
    };
    std::vector<Sweep> sweeps;
    for (std::size_t s = 0; s < kRates.size(); ++s) {
      const auto curve = testbed.curve(kRates[s]);
      Sweep sweep;
      sweep.points = core::sweep_type_ratio(curve, decisions.cut_a[s],
                                            decisions.cut_b[s], kJobs);
      sweep.best = core::best_ratio(sweep.points);
      sweeps.push_back(std::move(sweep));
    }

    // Tabulate at matching comm-heavy counts (every 5th split).
    for (std::size_t i = 4; i + 1 < sweeps[0].points.size(); i += 5) {
      std::vector<std::string> row{
          util::format_fixed(sweeps[0].points[i].ratio, 2)};
      for (const auto& sweep : sweeps)
        row.push_back(util::format_fixed(sweep.points[i].makespan / 1e3, 2));
      table.add_row(row);
    }
    std::cout << table;
    std::cout << "optimal mixes: ";
    const double mbps_labels[] = {9.0, 10.0, 11.0};
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
      std::cout << mbps_labels[s] << " Mbps -> ratio "
                << util::format_fixed(sweeps[s].best.ratio, 2) << " ("
                << sweeps[s].best.n_comp_heavy << ":"
                << sweeps[s].best.n_comm_heavy << ", "
                << util::format_fixed(sweeps[s].best.makespan / 1e3, 2)
                << " s)  ";
    }
    std::cout << "\n(paper: the optimum is not 1:1 and shifts with the "
                 "bandwidth)\n";
    bench::print_cache_stats(model);
  }
  return 0;
}
