// Extension bench: fault tolerance.  The paper plans at one measured
// bandwidth; real uplinks drift and drop.  This bench scores three
// responses against the SAME randomized fault traces:
//
//   static — the paper's JPS plan at the nominal rate, executed as-is;
//   robust — core::RobustPlanner's worst-case mix over the drift interval;
//   replan — the static plan, but the fault executor re-cuts un-admitted
//            jobs when the EWMA bandwidth estimate drifts (make_replan_hook).
//
// Two scenarios: a sustained mid-run bandwidth collapse (where the robust
// mix and replanning beat the static plan's p95), and transient dips with
// outages (where retry/backoff and local fallback keep every job
// completing).
#include <iostream>
#include <vector>

#include "common.h"
#include "core/robust.h"
#include "fault/fault_executor.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace jps;

constexpr int kJobs = 30;
constexpr int kTrials = 101;
constexpr double kMbps = net::kBandwidth4GMbps;

struct Campaign {
  util::Summary makespan;
  double mean_retries = 0.0;
  double mean_fallbacks = 0.0;
  double mean_replans = 0.0;
};

// Execute `plan` against every spec (noiseless, so only the faults differ
// between approaches) and summarize.
Campaign run_campaign(const bench::Testbed& testbed,
                      const partition::ProfileCurve& curve,
                      const core::ExecutionPlan& plan,
                      const net::Channel& channel,
                      const std::vector<fault::FaultSpec>& specs,
                      bool replanning) {
  fault::FaultExecOptions options;
  options.replan.enabled = replanning;
  fault::ReplanFn hook;
  if (replanning)
    hook = fault::make_replan_hook(curve, channel, core::Strategy::kJPSTuned);

  const std::size_t n = specs.size();
  std::vector<double> makespans(n);
  std::vector<fault::FaultStats> stats(n);
  util::parallel_for(n, [&](std::size_t trial) {
    util::Rng rng(11 + static_cast<std::uint64_t>(trial) * 1000003ull);
    const fault::FaultTimeline timeline(specs[trial], channel);
    const fault::FaultSimResult r = fault::simulate_plan_under_faults(
        testbed.graph(), curve, plan, testbed.mobile(), testbed.cloud(),
        timeline, options, rng, nullptr, hook);
    makespans[trial] = r.sim.makespan;
    stats[trial] = r.stats;
  });

  Campaign c;
  c.makespan = util::summarize(makespans);
  for (const fault::FaultStats& s : stats) {
    c.mean_retries += s.retries;
    c.mean_fallbacks += s.fallbacks;
    c.mean_replans += s.replans;
  }
  c.mean_retries /= static_cast<double>(n);
  c.mean_fallbacks /= static_cast<double>(n);
  c.mean_replans /= static_cast<double>(n);
  return c;
}

// The uplink collapses at a random onset and stays degraded for the rest of
// the run: the canonical case for replanning (the static plan keeps feeding
// a 2-20x slower link; the re-cut pushes the remaining jobs local).
std::vector<fault::FaultSpec> sustained_collapse_specs(double predicted_ms,
                                                       double base_mbps) {
  std::vector<fault::FaultSpec> specs;
  specs.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    util::Rng rng(500 + static_cast<std::uint64_t>(t) * 1000003ull);
    const double onset = rng.uniform(0.1, 0.5) * predicted_ms;
    const double factor = rng.uniform(0.05, 0.5);
    fault::FaultSpec spec;
    spec.events.push_back({fault::FaultKind::kDrift, onset, predicted_ms * 8.0,
                           factor * base_mbps});
    specs.push_back(std::move(spec));
  }
  return specs;
}

// Transient dips plus hard outages, all bounded by a horizon after which the
// link recovers: stresses retry/backoff and local fallback.
std::vector<fault::FaultSpec> transient_specs(double predicted_ms,
                                              double base_mbps) {
  fault::RandomFaultOptions fo;
  fo.horizon_ms = predicted_ms * 1.5;
  fo.base_mbps = base_mbps;
  fo.drift_segments = 3;
  fo.drift_duration_min_ms = fo.horizon_ms / 6.0;
  fo.drift_duration_max_ms = fo.horizon_ms / 2.5;
  fo.drift_factor_min = 0.05;  // deep dips: the hostile direction
  fo.drift_factor_max = 0.4;
  fo.outages = 2;
  fo.outage_duration_min_ms = 50.0;
  fo.outage_duration_max_ms = 200.0;

  std::vector<fault::FaultSpec> specs;
  specs.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    util::Rng rng(500 + static_cast<std::uint64_t>(t) * 1000003ull);
    specs.push_back(fault::FaultSpec::random(fo, rng));
  }
  return specs;
}

void scenario(const bench::Testbed& testbed,
              const partition::ProfileCurve& curve,
              const net::Channel& channel, const core::ExecutionPlan& static_plan,
              const core::ExecutionPlan& robust_plan, const char* title,
              const std::vector<fault::FaultSpec>& specs) {
  std::cout << "\n--- " << title << " (" << specs.size() << " traces) ---\n";
  util::Table table({"approach", "median (s)", "p95 (s)", "max (s)",
                     "retries", "fallbacks", "replans"});
  const auto add = [&](const char* name, const Campaign& c) {
    table.add_row({name, util::format_fixed(c.makespan.median / 1e3, 2),
                   util::format_fixed(c.makespan.p95 / 1e3, 2),
                   util::format_fixed(c.makespan.max / 1e3, 2),
                   util::format_fixed(c.mean_retries, 2),
                   util::format_fixed(c.mean_fallbacks, 2),
                   util::format_fixed(c.mean_replans, 2)});
  };
  add("static (JPS@nominal)",
      run_campaign(testbed, curve, static_plan, channel, specs, false));
  add("robust (worst-case)",
      run_campaign(testbed, curve, robust_plan, channel, specs, false));
  add("replan (EWMA drift)",
      run_campaign(testbed, curve, static_plan, channel, specs, true));
  std::cout << table;
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension: fault tolerance",
      "Static vs robust vs replanning under identical fault traces "
      "(AlexNet, 4G nominal, 30 jobs, noiseless)");

  const bench::Testbed testbed("alexnet");
  const net::Channel channel(kMbps);
  const auto curve = testbed.curve(kMbps);
  const core::BandwidthInterval interval{kMbps * 0.2, kMbps};

  const core::Planner planner(curve);
  const core::ExecutionPlan static_plan =
      planner.plan(core::Strategy::kJPS, kJobs);
  const core::RobustPlanner robust(curve, channel, interval);
  const core::ExecutionPlan robust_plan = robust.plan(kJobs);

  // Analytic view first: each FIXED plan re-scored across the interval.
  util::Table analytic({"plan", "nominal (s)", "worst-case (s)", "CVaR90 (s)"});
  for (const auto& [name, plan] :
       {std::pair<const char*, const core::ExecutionPlan&>{"static",
                                                           static_plan},
        {"robust", robust_plan}}) {
    const std::vector<double> ms =
        core::plan_makespans_over_interval(plan, curve, channel, interval, 33);
    analytic.add_row({name,
                      util::format_fixed(plan.predicted_makespan / 1e3, 2),
                      util::format_fixed(util::max(ms) / 1e3, 2),
                      util::format_fixed(core::cvar_tail_mean(ms, 0.9) / 1e3,
                                         2)});
  }
  std::cout << "\n--- closed-form makespan over [" << interval.lo_mbps << ", "
            << interval.hi_mbps << "] Mbps ---\n"
            << analytic;

  const double predicted = static_plan.predicted_makespan;
  scenario(testbed, curve, channel, static_plan, robust_plan,
           "sustained bandwidth collapse",
           sustained_collapse_specs(predicted, kMbps));
  scenario(testbed, curve, channel, static_plan, robust_plan,
           "transient dips + outages", transient_specs(predicted, kMbps));

  std::cout << "\n(The robust mix pre-pays a little nominal makespan to cap\n"
               "the drift tail; replanning recovers most of that tail without\n"
               "the nominal premium but needs a few jobs of reaction time.\n"
               "Outage trials finish every job: exhausted retry budgets\n"
               "degrade to local execution instead of aborting.)\n";
  return 0;
}
