// Bench telemetry: machine-readable BENCH_<name>.json files.
//
// Every figure bench prints human-readable tables; this adds the pipeline
// that lets CI *compare* runs.  A BenchReporter accumulates named metric
// distributions (backed by obs::Histogram, so p50/p95/p99 come with the
// same bounded relative error as the runtime metrics) and, when the
// JPS_BENCH_JSON_DIR environment variable is set, writes one
// "<dir>/BENCH_<name>.json" on destruction.  `jps_bench_diff` consumes two
// of these files and flags regressions.
//
// Schema "jps-bench-v1" (see bench/README.md):
//   {
//     "schema": "jps-bench-v1",
//     "name": ...,              // bench name
//     "git_sha": ...,           // short SHA of the producing build
//     "build_type": ...,        // CMAKE_BUILD_TYPE
//     "compiler": ...,          // __VERSION__
//     "quick": true|false,      // JPS_BENCH_QUICK was set
//     "warmup": N, "iterations": N,
//     "config": {k: v, ...},    // free-form bench parameters
//     "metrics": {name: {count, mean, p50, p95, p99, min, max, sum}, ...},
//     "counters": {name: N, ...}  // obs registry counters at write time
//   }
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace jps::bench {

/// True when JPS_BENCH_QUICK is set to a non-empty value other than "0".
/// Benches shrink their trial counts under quick mode so the CI smoke job
/// finishes in seconds; the emitted JSON records which mode produced it.
[[nodiscard]] bool quick_mode();

/// Scale `n` down to `quick_n` when quick_mode() is on.
[[nodiscard]] int quick_scaled(int n, int quick_n);

/// Accumulates one bench's telemetry and writes BENCH_<name>.json at
/// destruction (or on an explicit write()).  Writing is skipped entirely
/// when JPS_BENCH_JSON_DIR is unset, so benches can construct one
/// unconditionally.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Loop shape, recorded verbatim into the JSON.
  void set_warmup(int warmup) { warmup_ = warmup; }
  void set_iterations(int iterations) { iterations_ = iterations; }

  /// Free-form config entries ("model": "alexnet", "jobs": 100, ...).
  void note(const std::string& key, const std::string& value);
  void note(const std::string& key, const char* value);
  void note(const std::string& key, double value);
  void note(const std::string& key, int value);

  /// Get-or-create the named metric distribution.
  [[nodiscard]] obs::Histogram& metric(const std::string& name);

  /// Shorthand for metric(name).record(value).
  void record(const std::string& name, double value);

  /// Write BENCH_<name>.json now (idempotent; destructor then skips).
  /// Returns the path written, or "" when JPS_BENCH_JSON_DIR is unset.
  std::string write();

  /// The document that write() serializes (exposed for tests).
  [[nodiscard]] util::Json to_json() const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  int warmup_ = 0;
  int iterations_ = 0;
  util::Json config_ = util::Json::object();
  // Histogram is non-copyable and handed out by reference; keep stable
  // addresses.  Ordered map so the JSON is deterministic.
  std::map<std::string, std::unique_ptr<obs::Histogram>> metrics_;
  bool written_ = false;
};

}  // namespace jps::bench
