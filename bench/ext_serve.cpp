// Extension bench: closed-loop throughput/latency of the plan server.
//
// N client threads drive one in-process serve::Server back to back (closed
// loop: each client's next request waits for its previous reply), cycling a
// small set of (model, bandwidth-bucket) keys so the serving fast paths —
// request coalescing and the sharded plan cache — carry the steady state,
// exactly as a fleet of devices sharing network conditions would.  A second
// phase replays the same load through serve::FaultyByteStream (scripted
// delays + 1-byte transfers) and reports GOODPUT under faults — successful,
// verified replies per second — the serving-side robustness figure.  Emits
// BENCH_ext_serve.json with requests/sec, goodput_under_faults_per_sec and
// the end-to-end latency distribution (p50/p95/p99); CI gates it with
// jps_bench_diff.
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common.h"
#include "fault/fault_spec.h"
#include "obs/flight_recorder.h"
#include "reporter.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace jps;

// Scripted chaos for the goodput phase: a 1-byte-transfer window and a tiny
// delay window repeating every 8 KiB of each stream direction, so faults
// keep biting however long the run is.  Delays and short transfers lose no
// bytes — every reply must still verify, making goodput == throughput the
// pass condition and the slowdown the measured cost.
fault::FaultSpec chaos_spec() {
  fault::FaultSpec spec;
  for (int k = 0; k < 4096; ++k) {
    const double base = static_cast<double>(k) * 8192.0;
    spec.events.push_back(
        {fault::FaultKind::kNetShort, base, base + 256.0, 0.0});
    spec.events.push_back(
        {fault::FaultKind::kNetDelay, base + 4096.0, base + 4160.0, 0.02});
  }
  return spec;
}

}  // namespace

int main() {
  bench::print_banner("Extension: plan server throughput",
                      "Closed-loop clients against the in-process server: "
                      "coalescing + sharded cache on the hot path");

  const int kClients = bench::quick_scaled(8, 4);
  const int kRequests = bench::quick_scaled(400, 60);  // per client
  const int kWarmup = bench::quick_scaled(40, 10);

  bench::BenchReporter reporter("ext_serve");
  reporter.set_warmup(kWarmup);
  reporter.set_iterations(kRequests);
  reporter.note("clients", kClients);
  reporter.note("requests_per_client", kRequests);

  serve::ServerOptions options;
  options.workers = 4;
  options.max_inflight = static_cast<std::size_t>(kClients) + 4;
  serve::Server server(options);

  // The request mix: three models at two buckets each; every key repeats
  // across clients so the steady state is cache hits with occasional
  // coalesced bursts.
  std::vector<serve::PlanRequest> mix;
  for (const char* model : {"alexnet", "vgg16", "nin"}) {
    for (const double mbps : {4.0, 25.0}) {
      serve::PlanRequest request;
      request.tenant = "bench";
      request.model = model;
      request.bandwidth_mbps = mbps;
      request.strategy = core::Strategy::kJPS;
      request.n_jobs = 8;
      mix.push_back(request);
    }
  }
  reporter.note("distinct_keys", static_cast<int>(mix.size()));

  obs::Histogram& latency = reporter.metric("request_latency_ms");
  std::atomic<int> failures{0};

  // Mid-run introspection: a live STATS connection rides alongside the load,
  // proving scrapes never disrupt serving and counters only move forward.
  std::atomic<bool> scrape_stop{false};
  std::atomic<int> scrape_failures{0};
  std::atomic<int> scrapes{0};
  serve::StreamPair scrape_pair = serve::make_in_process_pair();
  std::thread scrape_server(
      [&server, s = std::shared_ptr<serve::ByteStream>(
                    std::move(scrape_pair.first))] {
        server.handle_connection(*s);
      });
  std::thread scraper(
      [&, end = std::shared_ptr<serve::ByteStream>(
              std::move(scrape_pair.second))] {
        try {
          serve::Client client(std::make_unique<serve::BorrowedStream>(end));
          double last_requests = -1.0;
          while (!scrape_stop.load(std::memory_order_acquire)) {
            const serve::StatsReply reply = client.scrape_stats();
            const util::Json json = util::Json::parse(reply.json);
            const util::Json* counters = json.get("counters");
            const util::Json* requests =
                counters == nullptr ? nullptr
                                    : counters->get("serve.requests");
            const double now = requests == nullptr ? 0.0
                                                   : requests->as_double();
            if (now < last_requests) scrape_failures.fetch_add(1);
            last_requests = now;
            scrapes.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
          client.close();
        } catch (const std::exception& e) {
          std::cerr << "ext_serve: stats scraper failed: " << e.what() << "\n";
          scrape_failures.fetch_add(1);
        }
      });

  std::vector<std::thread> server_threads;
  std::vector<std::thread> client_threads;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    serve::StreamPair pair = serve::make_in_process_pair();
    server_threads.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(
                      std::move(pair.first))] { server.handle_connection(*s); });
    client_threads.emplace_back(
        [&, c, end = std::shared_ptr<serve::ByteStream>(
                   std::move(pair.second))]() {
          serve::Client client(std::make_unique<serve::BorrowedStream>(end));
          for (int r = 0; r < kWarmup + kRequests; ++r) {
            const serve::PlanRequest& request =
                mix[static_cast<std::size_t>(c + r) % mix.size()];
            const auto t0 = std::chrono::steady_clock::now();
            const serve::PlanReply reply = client.plan(request);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (!reply.ok()) failures.fetch_add(1);
            if (r >= kWarmup) latency.record(ms);
          }
          client.close();
        });
  }
  for (std::thread& t : client_threads) t.join();
  for (std::thread& t : server_threads) t.join();
  scrape_stop.store(true, std::memory_order_release);
  scraper.join();
  scrape_server.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const double total_requests =
      static_cast<double>(kClients) * (kWarmup + kRequests);
  const double rps = total_requests / elapsed_s;
  reporter.record("requests_per_sec", rps);

  // ---- Phase 2: the same closed loop through chaos transports. ----
  const fault::FaultSpec chaos = chaos_spec();
  obs::Histogram& chaos_latency = reporter.metric("chaos_request_latency_ms");
  std::atomic<long> chaos_ok{0};
  std::atomic<int> chaos_failures{0};
  const int kChaosRequests = bench::quick_scaled(120, 30);  // per client

  std::vector<std::thread> chaos_server_threads;
  std::vector<std::thread> chaos_client_threads;
  const auto chaos_start = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    serve::StreamPair pair = serve::make_in_process_pair();
    chaos_server_threads.emplace_back(
        [&server, s = std::shared_ptr<serve::ByteStream>(
                      std::move(pair.first))] { server.handle_connection(*s); });
    chaos_client_threads.emplace_back(
        [&, c, end = std::shared_ptr<serve::ByteStream>(
                   std::move(pair.second))]() {
          serve::Client client(std::make_unique<serve::FaultyByteStream>(
              std::make_unique<serve::BorrowedStream>(end), chaos));
          for (int r = 0; r < kChaosRequests; ++r) {
            const serve::PlanRequest& request =
                mix[static_cast<std::size_t>(c + r) % mix.size()];
            const auto t0 = std::chrono::steady_clock::now();
            const serve::PlanReply reply = client.plan(request);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            chaos_latency.record(ms);
            if (reply.ok())
              chaos_ok.fetch_add(1);
            else
              chaos_failures.fetch_add(1);
          }
          client.close();
        });
  }
  for (std::thread& t : chaos_client_threads) t.join();
  for (std::thread& t : chaos_server_threads) t.join();
  const double chaos_elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    chaos_start)
          .count();
  server.stop();

  const double goodput = static_cast<double>(chaos_ok.load()) / chaos_elapsed_s;
  reporter.record("goodput_under_faults_per_sec", goodput);
  reporter.note("chaos_requests_per_client", kChaosRequests);
  reporter.note("chaos_failures", chaos_failures.load());

  const serve::ServerStats stats = server.stats();
  reporter.note("coalesce_hits", static_cast<int>(stats.coalesce_hits));
  reporter.note("cache_hits", static_cast<int>(stats.cache_hits));
  reporter.note("plans_computed", static_cast<int>(stats.plans_computed));
  const int traces_recorded =
      static_cast<int>(obs::FlightRecorder::global().size());
  reporter.note("stats_scrapes", scrapes.load());
  reporter.note("traces_recorded", traces_recorded);

  const obs::HistogramSnapshot snap = latency.snapshot();
  util::Table table({"metric", "value"});
  table.add_row({"clients", std::to_string(kClients)});
  table.add_row({"requests", std::to_string(static_cast<long>(total_requests))});
  table.add_row({"requests/sec", util::format_fixed(rps, 0)});
  table.add_row({"p50 (ms)", util::format_ms(snap.percentile(50))});
  table.add_row({"p95 (ms)", util::format_ms(snap.percentile(95))});
  table.add_row({"p99 (ms)", util::format_ms(snap.percentile(99))});
  table.add_row({"coalesce hits", std::to_string(stats.coalesce_hits)});
  table.add_row({"cache hits", std::to_string(stats.cache_hits)});
  table.add_row({"plans computed", std::to_string(stats.plans_computed)});
  table.add_row({"goodput under faults/sec", util::format_fixed(goodput, 0)});
  const obs::HistogramSnapshot chaos_snap = chaos_latency.snapshot();
  table.add_row({"chaos p95 (ms)", util::format_ms(chaos_snap.percentile(95))});
  std::cout << table;

  if (failures.load() != 0 || chaos_failures.load() != 0) {
    std::cerr << "ext_serve: " << failures.load() << " failed replies, "
              << chaos_failures.load() << " failed chaos replies\n";
    return 1;
  }
  if (scrape_failures.load() != 0 || scrapes.load() == 0 ||
      traces_recorded == 0) {
    std::cerr << "ext_serve: introspection gate failed (scrapes="
              << scrapes.load() << " scrape_failures="
              << scrape_failures.load() << " traces=" << traces_recorded
              << ")\n";
    return 1;
  }
  return 0;
}
