// Extension bench: the §6.1 deployment loop with REAL measurements — run
// the numeric kernels on this host, time every layer, build the lookup
// table, and plan from it.  Nothing analytic in the mobile-side path; the
// channel stays modeled (there is no second machine here).
#include <iostream>
#include <map>

#include "common.h"
#include "core/planner.h"
#include "models/zoo.h"
#include "runtime/host_profiler.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: host-measured profiling",
                      "Wall-clock per-layer measurement of the numeric "
                      "kernels on THIS machine -> lookup table -> JPS plan");

  // A mid-size synthetic CNN keeps the naive kernels fast enough to time.
  models::SyntheticLineSpec spec;
  spec.blocks = 6;
  spec.input_size = 64;
  spec.base_channels = 16;
  spec.fc_sizes = {64, 10};
  dnn::Graph g = models::synthetic_line(spec);
  g.infer();

  runtime::HostProfilerOptions options;
  options.trials = 5;
  options.warmup = 1;
  const auto records = runtime::profile_on_host(g, options);
  profile::LookupTable table;
  table.add_graph(g, records);

  std::cout << "\nper-layer wall-clock medians on this host ("
            << options.trials << " trials):\n";
  util::Table layer_table({"node", "layer", "median (ms)", "stddev (ms)"});
  double total = 0.0;
  for (const auto& rec : records) {
    if (rec.median_ms <= 0.0) continue;
    layer_table.add_row({std::to_string(rec.node), g.label(rec.node),
                         util::format_ms(rec.median_ms),
                         util::format_ms(rec.stddev_ms)});
    total += rec.median_ms;
  }
  std::cout << layer_table << "total measured inference: "
            << util::format_ms(total) << " ms\n";

  std::cout << "\nJPS plans from the MEASURED curve (20 jobs):\n";
  util::Table plan_table({"uplink (Mbps)", "LO ms/job", "CO ms/job",
                          "JPS+ ms/job", "JPS+ cut mix"});
  for (const double mbps : {1.0, 5.0, 20.0, 100.0}) {
    const auto curve =
        partition::ProfileCurve::build(g, table, net::Channel(mbps));
    const core::Planner planner(curve);
    const auto lo = planner.plan(core::Strategy::kLocalOnly, 20);
    const auto co = planner.plan(core::Strategy::kCloudOnly, 20);
    const auto jps = planner.plan(core::Strategy::kJPSHull, 20);
    std::map<std::size_t, int> mix;
    for (const auto& job : jps.jobs) ++mix[job.cut_index];
    std::string mix_str;
    for (const auto& [cut, count] : mix) {
      if (!mix_str.empty()) mix_str += " + ";
      mix_str += std::to_string(count) + "@" + std::to_string(cut);
    }
    plan_table.add_row({util::format_fixed(mbps, 1),
                        util::format_ms(lo.makespan_per_job()),
                        util::format_ms(co.makespan_per_job()),
                        util::format_ms(jps.makespan_per_job()), mix_str});
  }
  std::cout << plan_table
            << "(absolute times reflect this machine's naive kernels, not a\n"
               "Pi; the planning pipeline is identical either way.)\n";
  return 0;
}
