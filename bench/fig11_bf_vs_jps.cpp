// Fig. 11 — JPS vs brute-force (BF) optimal, on AlexNet and on the
// synthetic AlexNet' whose communication curve is replaced by its fitted
// convex exponential (§6.3).  The paper's finding: on AlexNet' (where the
// §3.2 convexity assumptions hold exactly) JPS reaches the BF optimum; on
// raw AlexNet it is optimal for small job counts and near-optimal beyond.
#include <iostream>

#include "common.h"
#include "sched/bruteforce.h"
#include "util/table.h"

namespace {

// BF: exact multiset enumeration while tractable, two-type search beyond
// (which the tests show is within O(1/n) of exact).
double bf_makespan(const jps::partition::ProfileCurve& curve, int n) {
  const auto options = curve.as_cut_options();
  try {
    return jps::sched::bruteforce_exact(options, n, 5'000'000).makespan;
  } catch (const std::invalid_argument&) {
    return jps::sched::bruteforce_two_type(options, n).makespan;
  }
}

}  // namespace

int main() {
  using namespace jps;
  bench::print_banner(
      "Figure 11",
      "Overall time of n identical jobs: JPS vs brute-force search, on\n"
      "AlexNet and synthetic AlexNet' (comm sampled from the fitted curve)");

  const bench::Testbed testbed("alexnet");
  const double mbps = 10.0;  // mid-range uplink, as in the figure's regime
  const auto raw_curve = testbed.curve(mbps);
  const auto smoothed_curve = raw_curve.with_fitted_comm();

  util::Table table({"n jobs", "AlexNet JPS (s)", "AlexNet BF (s)",
                     "AlexNet gap", "AlexNet' JPS (s)", "AlexNet' BF (s)",
                     "AlexNet' gap"});
  for (int exponent = 1; exponent <= 9; ++exponent) {
    const int n = 1 << exponent;
    const core::Planner raw_planner(raw_curve);
    const core::Planner smooth_planner(smoothed_curve);
    const double raw_jps =
        raw_planner.plan(core::Strategy::kJPSTuned, n).predicted_makespan;
    const double raw_bf = bf_makespan(raw_curve, n);
    const double smooth_jps =
        smooth_planner.plan(core::Strategy::kJPSTuned, n).predicted_makespan;
    const double smooth_bf = bf_makespan(smoothed_curve, n);
    table.add_row({std::to_string(n), util::format_fixed(raw_jps / 1e3, 2),
                   util::format_fixed(raw_bf / 1e3, 2),
                   util::format_pct(raw_jps / raw_bf - 1.0),
                   util::format_fixed(smooth_jps / 1e3, 2),
                   util::format_fixed(smooth_bf / 1e3, 2),
                   util::format_pct(smooth_jps / smooth_bf - 1.0)});
  }
  std::cout << table;
  std::cout << "\nPaper's finding to compare against: JPS == BF on the\n"
               "fitted-curve AlexNet' at every n; on raw AlexNet JPS is\n"
               "optimal for small n and within a few percent beyond (the\n"
               "coarse discrete curve violates Theorem 5.3's conditions).\n"
               "The JPS+ hull extension closes the raw-AlexNet gap:\n";

  util::Table hull({"n jobs", "AlexNet JPS+ (s)", "AlexNet BF (s)", "gap"});
  for (int exponent = 1; exponent <= 9; ++exponent) {
    const int n = 1 << exponent;
    const core::Planner planner(raw_curve);
    const double jps_hull =
        planner.plan(core::Strategy::kJPSHull, n).predicted_makespan;
    const double bf = bf_makespan(raw_curve, n);
    hull.add_row({std::to_string(n), util::format_fixed(jps_hull / 1e3, 2),
                  util::format_fixed(bf / 1e3, 2),
                  util::format_pct(jps_hull / bf - 1.0)});
  }
  std::cout << hull;
  return 0;
}
