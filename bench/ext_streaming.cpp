// Extension bench: streamed arrivals.  The paper assumes all jobs released
// at time 0 (§3.1); real camera pipelines emit frames every T ms.  This
// bench sweeps the frame period for a 4-camera AlexNet workload and compares
// arrival-order streaming against windowed Johnson batching, bracketing them
// with the all-at-0 lower bound.
#include <iostream>

#include "common.h"
#include "partition/binary_search.h"
#include "sched/release.h"
#include "sim/event_sim.h"
#include "util/table.h"

int main() {
  using namespace jps;
  const std::string trace_path = bench::maybe_trace_path("ext_streaming");
  bench::print_banner("Extension: streamed arrivals",
                      "4 cameras x 8 rounds of AlexNet frames arriving every "
                      "T ms at 4G; streaming vs batched Johnson");

  const bench::Testbed testbed("alexnet");
  const double mbps = net::kBandwidth4GMbps;
  const auto curve = testbed.curve(mbps);
  const core::Planner planner(curve);

  // Use the JPS cut mix for the whole horizon (32 jobs).
  constexpr int kCameras = 4;
  constexpr int kRounds = 8;
  constexpr int kJobs = kCameras * kRounds;
  const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, kJobs);

  util::Table table({"frame period (ms)", "arrival order (s)",
                     "windowed Johnson (s)", "all-at-0 bound (s)",
                     "windowed vs arrival"});
  // Deal the Johnson-ordered jobs to rounds ROUND-ROBIN, so every arrival
  // round carries a mix of the two cut types (each camera batch has both
  // shallow- and deep-cut frames), and the within-round order matters.
  std::vector<sched::Job> dealt(plan.scheduled_jobs.size());
  for (std::size_t k = 0; k < plan.scheduled_jobs.size(); ++k) {
    const std::size_t round = k % kRounds;
    const std::size_t slot = k / kRounds;
    dealt[round * kCameras + slot] = plan.scheduled_jobs[k];
  }
  for (const double period :
       {0.0, 200.0, 500.0, 700.0, 900.0, 1200.0}) {
    std::vector<sched::TimedJob> jobs;
    for (int r = 0; r < kRounds; ++r) {
      for (int c = 0; c < kCameras; ++c) {
        const std::size_t k = static_cast<std::size_t>(r * kCameras + c);
        jobs.push_back(
            sched::TimedJob{dealt[k], static_cast<double>(r) * period});
      }
    }
    auto eval = [&](const std::vector<std::size_t>& order) {
      std::vector<sched::TimedJob> ordered;
      for (const std::size_t idx : order) ordered.push_back(jobs[idx]);
      return sched::flowshop2_makespan_released(ordered);
    };
    const double stream = eval(sched::johnson_by_release(jobs));
    // Window: two arrival rounds per batch (a small look-ahead buffer).
    const double batched =
        eval(sched::batched_johnson(jobs, std::max(1.0, 2.0 * period)));
    const double bound = plan.predicted_makespan;
    table.add_row({util::format_fixed(period, 0),
                   util::format_fixed(stream / 1e3, 2),
                   util::format_fixed(batched / 1e3, 2),
                   util::format_fixed(bound / 1e3, 2),
                   util::format_pct(1.0 - batched / stream)});
  }
  std::cout << table
            << "\n(Fast arrivals recover the paper's all-at-0 setting and the\n"
               "offline bound exactly.  Past the saturation period the\n"
               "pipeline is arrival-limited: makespan grows with the period\n"
               "and re-ordering inside windows cannot help — it can even\n"
               "hurt, since placing a later-released frame first idles the\n"
               "CPU.  On this compute-bound workload the streaming policy's\n"
               "order barely matters; Johnson grouping pays off only when\n"
               "compute and communication are balanced, as the scheduling\n"
               "ablation shows for the all-at-0 case.)\n";

  if (!trace_path.empty()) {
    // Timeline for the trace: the all-at-0 bound executed as a 2-stage
    // pipeline (compute on the mobile CPU, then the uplink transfer).
    sim::EventSimulator timeline;
    const sim::ResourceId cpu = timeline.add_resource("mobile_cpu");
    const sim::ResourceId link = timeline.add_resource("uplink");
    for (const sched::Job& job : plan.scheduled_jobs) {
      const std::string tag = "j" + std::to_string(job.id);
      const sim::TaskId comp =
          timeline.add_task(cpu, job.f, {}, tag + ":comp");
      timeline.add_task(link, job.g, {comp}, tag + ":tx");
    }
    timeline.run();
    bench::write_trace_file(trace_path, &timeline);
  }
  return 0;
}
