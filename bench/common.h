// Shared fixtures for the figure/table benches: the simulated testbed of
// §6.1 (Pi-4B-class mobile device, GTX1080-class cloud, affine channel) and
// helpers to plan + execute and report one configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/plan.h"
#include "core/plan_cache.h"
#include "util/csv.h"
#include "core/planner.h"
#include "dnn/graph.h"
#include "net/channel.h"
#include "partition/profile_curve.h"
#include "profile/device.h"
#include "profile/latency_model.h"
#include "sim/executor.h"

namespace jps::bench {

/// The paper's testbed, simulated.
class Testbed {
 public:
  explicit Testbed(const std::string& model_name);

  [[nodiscard]] const dnn::Graph& graph() const { return graph_; }
  [[nodiscard]] const profile::LatencyModel& mobile() const { return mobile_; }
  [[nodiscard]] const profile::LatencyModel& cloud() const { return cloud_; }

  /// Clustered trunk curve at the given uplink bandwidth.  Memoized in
  /// PlanCache::global(): sweeps asking for the same (model, bandwidth)
  /// point — e.g. four strategies per bandwidth in Fig. 13 — build it once.
  [[nodiscard]] partition::ProfileCurve curve(double mbps) const;

  /// The memoized curve without copying out of the cache.
  [[nodiscard]] std::shared_ptr<const partition::ProfileCurve> cached_curve(
      double mbps) const;

  /// Plan through PlanCache::global(): repeated (strategy, mbps, n_jobs)
  /// asks return the memoized plan.
  [[nodiscard]] std::shared_ptr<const core::ExecutionPlan> cached_plan(
      core::Strategy strategy, double mbps, int n_jobs) const;

  /// Plan `n_jobs` with `strategy` at `mbps` and execute the plan on the
  /// discrete-event simulator (3-stage, noiseless).  Returns the simulated
  /// makespan in ms.
  [[nodiscard]] double simulate(core::Strategy strategy, double mbps,
                                int n_jobs, std::uint64_t seed = 1) const;

  /// Same, but returns the whole plan + simulated makespan pair.  When
  /// `capture` is non-null the finished discrete-event engine is moved into
  /// it (for write_trace_file).
  struct Outcome {
    core::ExecutionPlan plan;
    double simulated_makespan = 0.0;
  };
  [[nodiscard]] Outcome run(core::Strategy strategy, double mbps, int n_jobs,
                            std::uint64_t seed = 1,
                            sim::EventSimulator* capture = nullptr) const;

 private:
  dnn::Graph graph_;
  profile::LatencyModel mobile_;
  profile::LatencyModel cloud_;
};

/// Standard bench banner: what is being reproduced and on what substrate.
void print_banner(const std::string& figure, const std::string& description);

/// Report PlanCache::global() hit/miss counters accumulated so far.
void print_cache_stats(const std::string& label);

/// When the JPS_BENCH_CSV_DIR environment variable is set, open
/// "<dir>/<name>.csv" with the given header so figure benches can dump the
/// raw series for re-plotting; returns nullptr (and writes nothing) when
/// unset.
[[nodiscard]] std::unique_ptr<util::CsvWriter> maybe_csv(
    const std::string& name, const std::vector<std::string>& header);

/// When the JPS_TRACE_DIR environment variable is set, switch span
/// recording on and return "<dir>/<name>.json"; returns "" (and records
/// nothing) when unset.  Call at bench start so the whole run is spanned.
[[nodiscard]] std::string maybe_trace_path(const std::string& name);

/// Write a Chrome trace to `path`: the instrumentation spans + counters
/// accumulated so far (pid 0) and, when given, a simulated timeline
/// (pid 1).  No-op when `path` is empty (JPS_TRACE_DIR unset).
void write_trace_file(const std::string& path,
                      const sim::EventSimulator* timeline = nullptr);

}  // namespace jps::bench
