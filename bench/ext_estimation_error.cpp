// Extension bench: how much does estimation error cost?  The paper's
// scheduler plans on a lookup table + comm regression (§6.1); both carry
// measurement noise.  This bench plans with increasingly noisy estimates,
// executes every plan on the exact simulator, and reports the regret vs the
// oracle plan — quantifying how robust the JPS decision is to profiling
// quality.
#include <iostream>

#include "common.h"
#include "profile/profiler.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: estimation-error robustness",
                      "Plan on noisy profiles, execute on the true testbed; "
                      "regret vs the oracle plan (alexnet, 4G, 50 jobs)");

  const bench::Testbed testbed("alexnet");
  const double mbps = net::kBandwidth4GMbps;
  const net::Channel channel(mbps);
  constexpr int kJobs = 50;
  constexpr int kRepeats = 11;

  // Oracle: plan and execute on exact costs.
  const auto oracle_curve = testbed.curve(mbps);
  const core::Planner oracle_planner(oracle_curve);
  const core::ExecutionPlan oracle_plan =
      oracle_planner.plan(core::Strategy::kJPS, kJobs);
  util::Rng oracle_rng(1);
  const double oracle_ms =
      sim::simulate_plan(testbed.graph(), oracle_curve, oracle_plan,
                         testbed.mobile(), testbed.cloud(), channel, {},
                         oracle_rng)
          .makespan;

  util::Table table({"profiling sigma", "median regret", "p95 regret",
                     "plans == oracle cuts"});
  for (const double sigma : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    std::vector<double> regrets;
    int identical = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      profile::ProfilerOptions options;
      options.noise_sigma = sigma;
      options.trials = 7;
      const profile::Profiler profiler(
          profile::DeviceProfile::raspberry_pi_4b(), options);
      util::Rng rng(static_cast<std::uint64_t>(100 + rep));
      profile::LookupTable lookup;
      lookup.add_graph(testbed.graph(),
                       profiler.measure_graph(testbed.graph(), rng));

      // Plan on the noisy estimates...
      const auto noisy_curve =
          partition::ProfileCurve::build(testbed.graph(), lookup, channel);
      const core::Planner planner(noisy_curve);
      const core::ExecutionPlan plan = planner.plan(core::Strategy::kJPS, kJobs);

      // ...but execute with the TRUE per-layer costs.  The plan's cut
      // choices are re-evaluated against the oracle curve.
      util::Rng sim_rng(1);
      const double actual =
          sim::simulate_plan(testbed.graph(), oracle_curve, plan,
                             testbed.mobile(), testbed.cloud(), channel, {},
                             sim_rng)
              .makespan;
      regrets.push_back(actual / oracle_ms - 1.0);
      identical += plan.jobs == oracle_plan.jobs ? 1 : 0;
    }
    table.add_row({util::format_fixed(sigma, 2),
                   util::format_pct(util::median(regrets)),
                   util::format_pct(util::percentile(regrets, 95.0)),
                   std::to_string(identical) + "/" + std::to_string(kRepeats)});
  }
  std::cout << table
            << "\n(The discrete cut grid absorbs small estimation errors —\n"
               "the chosen pair only flips once errors move the f >= g\n"
               "crossing across a cut boundary.)\n";
  return 0;
}
