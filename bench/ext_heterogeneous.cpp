// Extension bench (the paper's §7 future work): heterogeneous job sets.
// A mixed perception workload — ResNet-18 and MobileNet-v2 frames in one
// batch — planned jointly with the lambda-balanced heterogeneous JPS vs the
// per-class baselines and vs planning each class separately.
#include <iostream>

#include "common.h"
#include "core/hetero.h"
#include "models/registry.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: heterogeneous jobs",
                      "Mixed ResNet-18 + MobileNet-v2 workload (8 + 24 jobs) "
                      "under joint lambda-balanced JPS");

  const profile::LatencyModel mobile(profile::DeviceProfile::raspberry_pi_4b());

  util::Table table({"uplink (Mbps)", "LO (s)", "CO (s)", "PO (s)",
                     "hetero JPS (s)", "separate JPS (s)",
                     "joint vs separate"});
  for (const double mbps : {1.1, 5.85, 9.0, 18.88, 40.0}) {
    const net::Channel channel(mbps);
    std::vector<core::JobClass> classes;
    classes.push_back(
        {"resnet18",
         partition::ProfileCurve::build(models::build("resnet18"), mobile,
                                        channel),
         8});
    classes.push_back(
        {"mobilenet_v2",
         partition::ProfileCurve::build(models::build("mobilenet_v2"), mobile,
                                        channel),
         24});

    const double lo =
        core::plan_hetero(classes, core::Strategy::kLocalOnly).makespan;
    const double co =
        core::plan_hetero(classes, core::Strategy::kCloudOnly).makespan;
    const double po =
        core::plan_hetero(classes, core::Strategy::kPartitionOnly).makespan;
    const core::HeteroPlan joint =
        core::plan_hetero(classes, core::Strategy::kJPS);

    double separate = 0.0;
    for (const core::JobClass& jc : classes) {
      std::vector<core::JobClass> solo{{jc.name, jc.curve, jc.count}};
      separate += core::plan_hetero(solo, core::Strategy::kJPS).makespan;
    }

    table.add_row({util::format_fixed(mbps, 2),
                   util::format_fixed(lo / 1e3, 2),
                   util::format_fixed(co / 1e3, 2),
                   util::format_fixed(po / 1e3, 2),
                   util::format_fixed(joint.makespan / 1e3, 2),
                   util::format_fixed(separate / 1e3, 2),
                   util::format_pct(1.0 - joint.makespan / separate)});
  }
  std::cout << table
            << "\n(The joint plan aligns both classes at one compute/comm\n"
               "price lambda and interleaves their stages in a single\n"
               "Johnson pipeline; back-to-back per-class plans leave the\n"
               "link idle during each class's warm-up and drain.)\n";

  // Show the mix the balancer picked at 4G.
  const net::Channel channel(5.85);
  std::vector<core::JobClass> classes;
  classes.push_back({"resnet18",
                     partition::ProfileCurve::build(models::build("resnet18"),
                                                    mobile, channel),
                     8});
  classes.push_back(
      {"mobilenet_v2",
       partition::ProfileCurve::build(models::build("mobilenet_v2"), mobile,
                                      channel),
       24});
  const core::HeteroPlan plan =
      core::plan_hetero(classes, core::Strategy::kJPS);
  std::cout << "\n4G plan (lambda = " << util::format_fixed(plan.lambda, 4)
            << "): job order [class:cut] =";
  for (const auto& unit : plan.scheduled)
    std::cout << ' ' << classes[static_cast<std::size_t>(unit.class_index)].name[0]
              << ':' << unit.cut_index;
  std::cout << "\n";
  return 0;
}
