// Ablations of the partition design choices DESIGN.md calls out:
//   1. virtual-block clustering on/off (curve size and search validity);
//   2. JPS ratio rule vs exact split sweep vs hull pair vs continuous
//      relaxation single cut;
//   3. trunk-only curve vs general curve with intra-module spread cuts
//      (GoogLeNet).
#include <iostream>

#include "common.h"
#include "models/registry.h"
#include "partition/continuous.h"
#include "partition/general_dag.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Ablation: partition",
                      "Clustering, cut-pair selection rule, and spread cuts");

  constexpr int kJobs = 100;
  constexpr double kMbps = net::kBandwidth4GMbps;

  // 1. Clustering.
  std::cout << "\n--- virtual-block clustering (4G) ---\n";
  util::Table clustering({"model", "raw cuts", "clustered cuts",
                          "raw g monotone?", "clustered g monotone?"});
  for (const auto& model : models::all_names()) {
    const bench::Testbed testbed(model);
    partition::CurveOptions raw_opt;
    raw_opt.cluster = false;
    const auto raw = partition::ProfileCurve::build(
        testbed.graph(), testbed.mobile(), net::Channel(kMbps), raw_opt);
    const auto clustered = testbed.curve(kMbps);
    clustering.add_row({model, std::to_string(raw.size()),
                        std::to_string(clustered.size()),
                        raw.is_monotone() ? "yes" : "no",
                        clustered.is_monotone() ? "yes" : "no"});
  }
  std::cout << clustering
            << "(without clustering the binary search's precondition fails "
               "on most models)\n";

  // 2. Cut-pair selection rule.
  std::cout << "\n--- pair-selection rule (per-job ms, 4G, predicted) ---\n";
  util::Table rules({"model", "JPS (ratio)", "JPS* (sweep)", "JPS+ (hull)",
                     "continuous x* single cut", "BF"});
  for (const auto& model : models::paper_eval_names()) {
    const bench::Testbed testbed(model);
    const auto curve = testbed.curve(kMbps);
    const core::Planner planner(curve);
    const double jps =
        planner.plan(core::Strategy::kJPS, kJobs).predicted_makespan / kJobs;
    const double tuned =
        planner.plan(core::Strategy::kJPSTuned, kJobs).predicted_makespan /
        kJobs;
    const double hull =
        planner.plan(core::Strategy::kJPSHull, kJobs).predicted_makespan /
        kJobs;
    const double bf =
        planner.plan(core::Strategy::kBruteForce, kJobs).predicted_makespan /
        kJobs;
    // Continuous relaxation: round x* and cut every job there.
    const auto relax = partition::relax_continuous(curve);
    const auto rounded = static_cast<std::size_t>(relax.x_star + 0.5);
    const double f = curve.f(rounded);
    const double g = curve.g(rounded);
    const double continuous = std::max(f, g) +
                              (f + g - std::max(f, g)) / kJobs;  // per-job
    rules.add_row({model, util::format_ms(jps), util::format_ms(tuned),
                   util::format_ms(hull), util::format_ms(continuous),
                   util::format_ms(bf)});
  }
  std::cout << rules
            << "(hull pair == index pair when the curve is convex; on coarse "
               "curves only the hull pair matches BF)\n";

  // 3. Spread cuts for GoogLeNet.
  std::cout << "\n--- GoogLeNet spread cuts (intra-inception, 4G) ---\n";
  const bench::Testbed google("googlenet");
  const auto mobile_fn = [&](dnn::NodeId id) {
    return google.mobile().node_time_ms(google.graph(), id);
  };
  const net::Channel channel(kMbps);
  const auto comm_fn = [&](std::uint64_t bytes) { return channel.time_ms(bytes); };
  const auto trunk = partition::ProfileCurve::build(google.graph(), mobile_fn,
                                                    comm_fn);
  const auto general =
      partition::build_general_curve(google.graph(), mobile_fn, comm_fn);
  const core::Planner trunk_planner(trunk);
  const core::Planner general_planner(general);
  util::Table spread({"curve", "cut candidates", "JPS+ per-job ms"});
  spread.add_row(
      {"trunk only", std::to_string(trunk.size()),
       util::format_ms(trunk_planner.plan(core::Strategy::kJPSHull, kJobs)
                           .predicted_makespan /
                       kJobs)});
  spread.add_row({"trunk + spread", std::to_string(general.size()),
                  util::format_ms(
                      general_planner.plan(core::Strategy::kJPSHull, kJobs)
                          .predicted_makespan /
                      kJobs)});
  std::cout << spread;
  return 0;
}
