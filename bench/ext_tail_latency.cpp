// Extension bench: tail latency under noise.  §1 motivates JPS with
// response-time-critical AR and self-driving workloads, where p95/p99
// matters more than the mean.  Monte-Carlo over 10% per-layer/per-transfer
// noise: how much of the JPS mean-makespan advantage survives at the tail,
// and which strategy degrades most?
#include <iostream>

#include "common.h"
#include "reporter.h"
#include "sim/monte_carlo.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: tail latency",
                      "Makespan distribution over 201 noisy executions "
                      "(sigma 0.10), AlexNet + ResNet-18, 4G, 30 jobs");

  const int kJobs = bench::quick_scaled(30, 10);
  const int kTrials = bench::quick_scaled(201, 31);
  bench::BenchReporter reporter("ext_tail_latency");
  reporter.set_iterations(kTrials);
  reporter.note("jobs", kJobs);
  reporter.note("sigma", 0.10);
  for (const char* model : {"alexnet", "resnet18"}) {
    const bench::Testbed testbed(model);
    const double mbps = net::kBandwidth4GMbps;
    const net::Channel channel(mbps);
    const auto curve = testbed.curve(mbps);
    const core::Planner planner(curve);

    std::cout << "\n--- " << model << " (s) ---\n";
    util::Table table({"strategy", "median", "p95", "max",
                       "p95/median inflation"});
    for (const core::Strategy s :
         {core::Strategy::kLocalOnly, core::Strategy::kCloudOnly,
          core::Strategy::kPartitionOnly, core::Strategy::kJPS}) {
      const core::ExecutionPlan plan = planner.plan(s, kJobs);
      sim::MonteCarloOptions options;
      options.trials = kTrials;
      options.comp_noise_sigma = 0.10;
      options.comm_noise_sigma = 0.10;
      const util::Summary summary = sim::monte_carlo_makespan(
          testbed.graph(), curve, plan, testbed.mobile(), testbed.cloud(),
          channel, options);
      const std::string prefix =
          std::string(model) + "." + core::strategy_name(s);
      reporter.record(prefix + ".median_ms", summary.median);
      reporter.record(prefix + ".p95_ms", summary.p95);
      table.add_row({core::strategy_name(s),
                     util::format_fixed(summary.median / 1e3, 2),
                     util::format_fixed(summary.p95 / 1e3, 2),
                     util::format_fixed(summary.max / 1e3, 2),
                     util::format_pct(summary.p95 / summary.median - 1.0)});
    }
    std::cout << table;
  }
  std::cout << "\n(Pipelines average noise across many stage executions, so\n"
               "every strategy's p95 sits within a few percent of its\n"
               "median — the JPS ranking is noise-stable.)\n";
  return 0;
}
