// Extension bench: mobile energy.  Neurosurgeon (the PO baseline's origin)
// also optimizes mobile energy; this bench reports the energy each strategy
// spends per job and the latency/energy trade-off of the cut choice.
#include <iostream>

#include "common.h"
#include "core/energy.h"
#include "models/registry.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: mobile energy",
                      "Per-job mobile energy of LO/CO/PO/JPS and the "
                      "energy-optimal cut (Pi-4B power profile, 100 jobs)");

  const core::EnergyModel energy(core::PowerProfile::raspberry_pi_4b());
  constexpr int kJobs = 100;

  for (const double mbps : {net::kBandwidth4GMbps, net::kBandwidthWiFiMbps}) {
    std::cout << "\n--- " << mbps << " Mbps (mJ per job | ms per job) ---\n";
    util::Table table({"model", "LO", "CO", "PO", "JPS", "energy-opt cut",
                       "JPS vs LO energy"});
    for (const auto& model : models::paper_eval_names()) {
      const bench::Testbed testbed(model);
      const auto curve = testbed.curve(mbps);
      const core::Planner planner(curve);

      auto cell = [&](core::Strategy strategy) {
        const core::ExecutionPlan plan = planner.plan(strategy, kJobs);
        std::vector<std::size_t> cuts;
        for (const auto& j : plan.jobs) cuts.push_back(j.cut_index);
        const double mj =
            energy.schedule_energy_mj(curve, cuts, plan.predicted_makespan) /
            kJobs;
        return std::pair<double, double>{mj, plan.makespan_per_job()};
      };
      const auto lo = cell(core::Strategy::kLocalOnly);
      const auto co = cell(core::Strategy::kCloudOnly);
      const auto po = cell(core::Strategy::kPartitionOnly);
      const auto jps = cell(core::Strategy::kJPS);
      const std::size_t energy_cut = energy.energy_optimal_cut(curve);

      auto fmt = [](const std::pair<double, double>& v) {
        return util::format_fixed(v.first, 0) + " | " +
               util::format_ms(v.second);
      };
      table.add_row({model, fmt(lo), fmt(co), fmt(po), fmt(jps),
                     curve.cut(energy_cut).label,
                     util::format_pct(1.0 - jps.first / lo.first)});
    }
    std::cout << table;
  }
  std::cout << "\n(JPS halves latency AND energy vs LO at these rates: less\n"
               "CPU-on time outweighs the radio cost.  The single-job\n"
               "energy-optimal cut usually coincides with PO's latency cut\n"
               "here because compute power dominates the Pi's radio.)\n";
  return 0;
}
