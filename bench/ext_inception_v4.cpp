// Extension bench: partitioning Inception-v4 — the network of the paper's
// Fig. 3(a) — whose 6.5e10 independent paths rule out Alg. 3's enumeration
// entirely.  The articulation-trunk curve (a handful of module-boundary
// cuts) keeps the problem O(log k) and JPS delivers the usual gains.
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace jps;
  bench::print_banner("Extension: Inception-v4 (paper Fig. 3(a))",
                      "Trunk-cut partition of a 341-layer, 6.5e10-path DAG; "
                      "LO/CO/PO/JPS at the paper's bandwidths, 50 jobs");

  const bench::Testbed testbed("inception_v4");
  std::cout << "graph: " << testbed.graph().size() << " layers, "
            << testbed.graph().path_count() << " source->sink paths, trunk of "
            << testbed.graph().articulation_nodes().size()
            << " articulation nodes\n";

  constexpr int kJobs = 50;
  util::Table table({"uplink (Mbps)", "curve cuts", "LO", "CO", "PO", "JPS",
                     "JPS vs best baseline"});
  for (const double mbps : {1.1, 5.85, 18.88, 50.0}) {
    const auto curve = testbed.curve(mbps);
    const double lo =
        testbed.simulate(core::Strategy::kLocalOnly, mbps, kJobs) / kJobs;
    const double co =
        testbed.simulate(core::Strategy::kCloudOnly, mbps, kJobs) / kJobs;
    const double po =
        testbed.simulate(core::Strategy::kPartitionOnly, mbps, kJobs) / kJobs;
    const double jps =
        testbed.simulate(core::Strategy::kJPS, mbps, kJobs) / kJobs;
    table.add_row({util::format_fixed(mbps, 2), std::to_string(curve.size()),
                   util::format_ms(lo), util::format_ms(co),
                   util::format_ms(po), util::format_ms(jps),
                   util::format_pct(1.0 - jps / std::min({lo, co, po}))});
  }
  std::cout << table
            << "(per-job ms, simulated.  Inception-v4's 299x299 input is\n"
               "~1 MB fp32, so CO needs fast links; its deep trunk gives\n"
               "JPS plenty of balanced cut choices in between.)\n";
  return 0;
}
